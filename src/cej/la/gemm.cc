#include "cej/la/gemm.h"

#include <algorithm>

#include "cej/common/macros.h"

namespace cej::la {

void GemmTile(const Matrix& a, const Matrix& b, size_t i0, size_t i1,
              size_t j0, size_t j1, float* out, SimdMode simd) {
  CEJ_DCHECK(a.cols() == b.cols());
  CEJ_DCHECK(i0 <= i1 && i1 <= a.rows());
  CEJ_DCHECK(j0 <= j1 && j1 <= b.rows());
  const size_t dim = a.cols();
  const size_t tile_cols = j1 - j0;
  // For each row of A in the tile, compute dots against all rows of the B
  // tile with the one-to-many kernel: the A row stays in registers while the
  // B tile (sized to fit cache by the caller) is swept linearly.
  for (size_t i = i0; i < i1; ++i) {
    DotOneToMany(a.Row(i), b.Row(j0), tile_cols, dim,
                 out + (i - i0) * tile_cols, simd);
  }
}

void GemmABt(const Matrix& a, const Matrix& b, Matrix* d,
             const GemmOptions& options) {
  CEJ_CHECK(d != nullptr);
  CEJ_CHECK(a.cols() == b.cols());
  CEJ_CHECK(d->rows() == a.rows() && d->cols() == b.rows());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t dim = a.cols();
  const size_t block_m = std::max<size_t>(options.block_m, 1);
  const size_t block_n = std::max<size_t>(options.block_n, 1);

  auto compute_rows = [&](size_t row_begin, size_t row_end) {
    // j-tiles inner so each B tile is reused across the whole A row block.
    for (size_t j0 = 0; j0 < n; j0 += block_n) {
      const size_t j1 = std::min(n, j0 + block_n);
      for (size_t i = row_begin; i < row_end; ++i) {
        DotOneToMany(a.Row(i), b.Row(j0), j1 - j0, dim, d->Row(i) + j0,
                     options.simd);
      }
    }
  };

  if (options.pool == nullptr || m * n * dim < (1u << 16)) {
    compute_rows(0, m);
    return;
  }
  options.pool->ParallelForRange(0, m, compute_rows, block_m);
}

void GemmABtReference(const Matrix& a, const Matrix& b, Matrix* d) {
  CEJ_CHECK(d != nullptr);
  CEJ_CHECK(a.cols() == b.cols());
  CEJ_CHECK(d->rows() == a.rows() && d->cols() == b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.At(i, k)) * b.At(j, k);
      }
      d->At(i, j) = static_cast<float>(acc);
    }
  }
}

}  // namespace cej::la
