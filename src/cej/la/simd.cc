#include "cej/la/simd.h"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace cej::la {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels (auto-vectorization disabled so "NO-SIMD" means no SIMD).
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define CEJ_NO_VECTORIZE \
  __attribute__((noinline, optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define CEJ_NO_VECTORIZE __attribute__((noinline))
#endif

CEJ_NO_VECTORIZE
float DotScalarImpl(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

CEJ_NO_VECTORIZE
float SquaredNormScalarImpl(const float* a, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * a[i];
  return acc;
}

// ---------------------------------------------------------------------------
// AVX2 kernels (8 floats per register, FMA).
// ---------------------------------------------------------------------------

#if defined(__AVX2__) && defined(__FMA__)
float DotAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float acc = _mm_cvtss_f32(lo);
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}
#endif  // __AVX2__ && __FMA__

// ---------------------------------------------------------------------------
// AVX-512 kernels (16 floats per register, FMA).
// ---------------------------------------------------------------------------

#if defined(__AVX512F__)
float DotAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float acc = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

// dot(a, b_r) for 8 consecutive rows at once: a's registers are reused
// across all eight rows (8x the arithmetic intensity per load of a), and
// the dimension tail is handled with a masked load instead of a scalar
// loop — both essential for dims like 100 that are not multiples of 16.
void Dot8Avx512(const float* a, const float* b, size_t dim, size_t stride,
                float* out) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  __m512 acc4 = _mm512_setzero_ps();
  __m512 acc5 = _mm512_setzero_ps();
  __m512 acc6 = _mm512_setzero_ps();
  __m512 acc7 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i);
    acc0 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + stride + i), acc1);
    acc2 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + 2 * stride + i), acc2);
    acc3 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + 3 * stride + i), acc3);
    acc4 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + 4 * stride + i), acc4);
    acc5 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + 5 * stride + i), acc5);
    acc6 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + 6 * stride + i), acc6);
    acc7 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b + 7 * stride + i), acc7);
  }
  if (i < dim) {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << (dim - i)) - 1u);
    const __m512 va = _mm512_maskz_loadu_ps(mask, a + i);
    acc0 = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(mask, b + i), acc0);
    acc1 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + stride + i), acc1);
    acc2 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + 2 * stride + i), acc2);
    acc3 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + 3 * stride + i), acc3);
    acc4 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + 4 * stride + i), acc4);
    acc5 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + 5 * stride + i), acc5);
    acc6 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + 6 * stride + i), acc6);
    acc7 = _mm512_fmadd_ps(
        va, _mm512_maskz_loadu_ps(mask, b + 7 * stride + i), acc7);
  }
  out[0] = _mm512_reduce_add_ps(acc0);
  out[1] = _mm512_reduce_add_ps(acc1);
  out[2] = _mm512_reduce_add_ps(acc2);
  out[3] = _mm512_reduce_add_ps(acc3);
  out[4] = _mm512_reduce_add_ps(acc4);
  out[5] = _mm512_reduce_add_ps(acc5);
  out[6] = _mm512_reduce_add_ps(acc6);
  out[7] = _mm512_reduce_add_ps(acc7);
}
#endif  // __AVX512F__

}  // namespace

float DotScalar(const float* a, const float* b, size_t dim) {
  return DotScalarImpl(a, b, dim);
}

float DotSimd(const float* a, const float* b, size_t dim) {
  switch (ActiveSimdLevel()) {
#if defined(__AVX512F__)
    case SimdLevel::kAvx512:
      return DotAvx512(a, b, dim);
#endif
#if defined(__AVX2__) && defined(__FMA__)
    case SimdLevel::kAvx2:
      return DotAvx2(a, b, dim);
#endif
    default:
      return DotScalarImpl(a, b, dim);
  }
}

void DotOneToMany(const float* a, const float* b_rows, size_t nrows,
                  size_t dim, float* out, SimdMode mode) {
  size_t r = 0;
#if defined(__AVX512F__)
  if (mode == SimdMode::kAuto && ActiveSimdLevel() == SimdLevel::kAvx512) {
    for (; r + 8 <= nrows; r += 8) {
      Dot8Avx512(a, b_rows + r * dim, dim, dim, out + r);
    }
  }
#endif
  for (; r < nrows; ++r) {
    out[r] = Dot(a, b_rows + r * dim, dim, mode);
  }
}

float SquaredNorm(const float* a, size_t dim, SimdMode mode) {
  if (mode == SimdMode::kForceScalar) return SquaredNormScalarImpl(a, dim);
  return DotSimd(a, a, dim);
}

SimdLevel ActiveSimdLevel() { return CpuInfo::MaxSimdLevel(); }

}  // namespace cej::la
