// Top-k selection over similarity scores.
//
// Index-based joins must specify a top-k (paper Table I / Section VI.E);
// scan-based joins can also emit top-k per probe vector. This helper keeps
// the k largest (score, id) pairs seen, breaking score ties by smaller id
// for determinism.

#ifndef CEJ_LA_TOPK_H_
#define CEJ_LA_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cej::la {

/// One scored candidate.
struct ScoredId {
  float score;
  uint64_t id;

  /// Ordering: higher score first; ties broken by smaller id.
  friend bool operator<(const ScoredId& x, const ScoredId& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.id < y.id;
  }
  friend bool operator==(const ScoredId& x, const ScoredId& y) {
    return x.score == y.score && x.id == y.id;
  }
};

/// Bounded max-collector: retains the k best ScoredIds pushed.
class TopKCollector {
 public:
  explicit TopKCollector(size_t k);

  /// Offers a candidate; kept only if it beats the current k-th best.
  void Push(float score, uint64_t id);

  /// True iff Push(score, id) would displace the current worst kept entry
  /// (or the collector is not yet full) — a faithful pre-filter: it applies
  /// Push's exact ordering, including the smaller-id tie-break, so a true
  /// return is never followed by a rejected Push of the same candidate.
  bool WouldAccept(float score, uint64_t id) const;

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

  /// Extracts results best-first. The collector is emptied.
  std::vector<ScoredId> TakeSorted();

 private:
  size_t k_;
  // Min-heap on (score, -id): heap_[0] is the current worst kept entry.
  std::vector<ScoredId> heap_;
};

/// Selects the k best entries of scores[0..n) (ids are indexes), sorted
/// best-first. Ties broken by smaller index.
std::vector<ScoredId> SelectTopK(const float* scores, size_t n, size_t k);

}  // namespace cej::la

#endif  // CEJ_LA_TOPK_H_
