#include "cej/la/matrix.h"

#include <cmath>

namespace cej::la {

Matrix Matrix::Clone() const {
  Matrix copy(rows_, cols_);
  copy.data_.CopyFrom(data_);
  return copy;
}

void Matrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.Resize(rows * cols);
}

void Matrix::NormalizeRows() {
  for (size_t r = 0; r < rows_; ++r) {
    float* row = Row(r);
    float sq = 0.0f;
    for (size_t c = 0; c < cols_; ++c) sq += row[c] * row[c];
    if (sq == 0.0f) continue;
    const float inv = 1.0f / std::sqrt(sq);
    for (size_t c = 0; c < cols_; ++c) row[c] *= inv;
  }
}

}  // namespace cej::la
