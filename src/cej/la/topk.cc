#include "cej/la/topk.h"

#include <algorithm>

#include "cej/common/macros.h"

namespace cej::la {
namespace {

// Heap comparison making the *worst* kept element the heap top. "Worse"
// means lower score, or equal score with larger id (so the smaller id wins
// ties for being kept).
bool HeapLess(const ScoredId& x, const ScoredId& y) {
  if (x.score != y.score) return x.score > y.score;
  return x.id < y.id;
}

}  // namespace

TopKCollector::TopKCollector(size_t k) : k_(k) {
  CEJ_CHECK(k_ > 0);
  heap_.reserve(k_);
}

void TopKCollector::Push(float score, uint64_t id) {
  if (!WouldAccept(score, id)) return;
  if (heap_.size() < k_) {
    heap_.push_back({score, id});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = {score, id};
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

bool TopKCollector::WouldAccept(float score, uint64_t id) const {
  if (heap_.size() < k_) return true;
  const ScoredId& worst = heap_.front();
  // Mirror of Push's displacement test: strictly better than the worst
  // kept entry under the (score desc, id asc) total order.
  return score > worst.score || (score == worst.score && id < worst.id);
}

std::vector<ScoredId> TopKCollector::TakeSorted() {
  std::vector<ScoredId> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end());  // ScoredId::operator< is best-first.
  return out;
}

std::vector<ScoredId> SelectTopK(const float* scores, size_t n, size_t k) {
  // The k == 0 answer is decided before any collector exists: the
  // collector CHECKs k > 0 and must never be constructed for it.
  if (k == 0) return {};
  TopKCollector collector(k);
  for (size_t i = 0; i < n; ++i) {
    collector.Push(scores[i], static_cast<uint64_t>(i));
  }
  return collector.TakeSorted();
}

}  // namespace cej::la
