// SIMD dot-product kernels.
//
// The paper's physical optimization study (Sections V, VI.B-C) compares
// SIMD-vectorized against scalar execution of the cosine-similarity inner
// loop. To make that comparison honest, the scalar kernel here is compiled
// with auto-vectorization disabled; the SIMD kernels use AVX2/AVX-512 FMA
// intrinsics explicitly. Callers select a kernel via SimdMode.

#ifndef CEJ_LA_SIMD_H_
#define CEJ_LA_SIMD_H_

#include <cstddef>

#include "cej/common/cpu_info.h"

namespace cej::la {

/// Kernel selection policy for similarity computations.
enum class SimdMode {
  /// Plain scalar loop, compiler auto-vectorization disabled. This is the
  /// "NO-SIMD" configuration of Figures 8 and 9.
  kForceScalar,
  /// Best available vector kernel (AVX-512 > AVX2 > scalar).
  kAuto,
};

/// Dot product, scalar loop with vectorization disabled (true NO-SIMD).
float DotScalar(const float* a, const float* b, size_t dim);

/// Dot product using the widest instruction set this binary+CPU supports.
float DotSimd(const float* a, const float* b, size_t dim);

/// Dot product dispatched by `mode`.
inline float Dot(const float* a, const float* b, size_t dim, SimdMode mode) {
  return mode == SimdMode::kForceScalar ? DotScalar(a, b, dim)
                                        : DotSimd(a, b, dim);
}

/// Computes dot(a, b_r) for `nrows` consecutive rows b_0..b_{nrows-1} of a
/// row-major matrix with stride `dim`, writing results to out[0..nrows).
/// Keeping `a` in registers across rows is the key cache win the tensor
/// micro-kernel builds on.
void DotOneToMany(const float* a, const float* b_rows, size_t nrows,
                  size_t dim, float* out, SimdMode mode);

/// Sum of squares (squared L2 norm), dispatched like Dot.
float SquaredNorm(const float* a, size_t dim, SimdMode mode);

/// The SIMD level the kAuto kernels will actually use at runtime.
SimdLevel ActiveSimdLevel();

}  // namespace cej::la

#endif  // CEJ_LA_SIMD_H_
