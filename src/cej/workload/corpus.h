// Synthetic corpus with planted semantics — the stand-in for the paper's
// Wikipedia training corpus (see DESIGN.md substitutions).
//
// The generator plants *synonym families*: groups of surface forms (base
// word, tense/plural variants, misspellings, and unrelated-looking aliases
// like "bbq" for "barbecue") that share a meaning. Families give three
// things the real corpus cannot: (1) a ConceptLexicon for the subword
// model, (2) a token stream in which family members appear in identical
// contexts so skip-gram training recovers the families, and (3) exact
// ground truth for similarity-join recall checks.

#ifndef CEJ_WORKLOAD_CORPUS_H_
#define CEJ_WORKLOAD_CORPUS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cej/common/rng.h"
#include "cej/model/subword_hash_model.h"

namespace cej::workload {

/// Corpus shape parameters.
struct CorpusOptions {
  size_t num_families = 64;       ///< Synonym families to plant.
  size_t variants_per_family = 5; ///< Surface forms per family (>= 1).
  size_t num_noise_words = 256;   ///< Unrelated filler vocabulary.
  uint64_t seed = 13;
};

/// A generated corpus: vocabulary with family structure plus samplers.
class Corpus {
 public:
  explicit Corpus(CorpusOptions options);

  /// Explicitly planted families override generated ones; used to mirror
  /// the paper's Table II examples (dbms/postgres/clothes...).
  /// Each inner vector is one family of surface forms.
  Corpus(CorpusOptions options,
         std::vector<std::vector<std::string>> explicit_families);

  /// All distinct words (family members first, then noise words).
  const std::vector<std::string>& words() const { return words_; }

  /// Family id of `word`, or -1 for noise words / unknown words.
  int64_t FamilyOf(const std::string& word) const;

  /// Ground truth: do two words share a family?
  bool SameFamily(const std::string& a, const std::string& b) const;

  /// Members of family `id`.
  const std::vector<std::string>& Family(size_t id) const {
    return families_.at(id);
  }
  size_t num_families() const { return families_.size(); }

  /// Concept lexicon for SubwordHashModel: every family member maps to its
  /// family id.
  model::ConceptLexicon MakeLexicon() const;

  /// Token stream for skip-gram training: sentences of the form
  /// [ctx ctx MEMBER ctx ctx], where each family owns a fixed set of
  /// context words. Family members thus share contexts and their trained
  /// embeddings converge.
  std::vector<std::string> GenerateTokenStream(size_t num_sentences,
                                               uint64_t seed) const;

  /// Samples n words for a join column: with probability `family_fraction`
  /// a uniformly random family member, else a noise word.
  std::vector<std::string> SampleWords(size_t n, double family_fraction,
                                       uint64_t seed) const;

 private:
  void BuildGeneratedFamilies(Rng& rng);
  void FinishConstruction();

  CorpusOptions options_;
  std::vector<std::vector<std::string>> families_;
  std::vector<std::string> noise_words_;
  std::vector<std::string> words_;
  std::unordered_map<std::string, int64_t> family_of_;
  // Per-family context vocabulary for the token stream.
  std::vector<std::vector<std::string>> family_contexts_;
};

}  // namespace cej::workload

#endif  // CEJ_WORKLOAD_CORPUS_H_
