#include "cej/workload/generators.h"

#include <algorithm>
#include <cmath>

#include "cej/common/macros.h"
#include "cej/common/rng.h"
#include "cej/la/vector_ops.h"

namespace cej::workload {

la::Matrix RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  CEJ_CHECK(dim > 0);
  la::Matrix out(n, dim);
  Rng rng(seed);
  for (size_t r = 0; r < n; ++r) {
    float* row = out.Row(r);
    for (size_t c = 0; c < dim; ++c) {
      row[c] = static_cast<float>(rng.NextGaussian());
    }
    la::NormalizeInPlace(row, dim);
    // Degenerate all-zero draws are astronomically unlikely but handled:
    if (la::L2Norm(row, dim) == 0.0f) row[0] = 1.0f;
  }
  return out;
}

std::vector<int64_t> UniformInt64(size_t n, int64_t lo, int64_t hi,
                                  uint64_t seed) {
  CEJ_CHECK(lo <= hi);
  std::vector<int64_t> out(n);
  Rng rng(seed);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  for (auto& v : out) {
    v = lo + static_cast<int64_t>(rng.NextBounded(span));
  }
  return out;
}

std::vector<int32_t> UniformDates(size_t n, int32_t lo, int32_t hi,
                                  uint64_t seed) {
  CEJ_CHECK(lo <= hi);
  std::vector<int32_t> out(n);
  Rng rng(seed);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  for (auto& v : out) {
    v = lo + static_cast<int32_t>(rng.NextBounded(span));
  }
  return out;
}

std::vector<std::string> RandomStrings(size_t n, size_t len_lo,
                                       size_t len_hi, uint64_t seed) {
  CEJ_CHECK(len_lo > 0 && len_lo <= len_hi);
  std::vector<std::string> out;
  out.reserve(n);
  Rng rng(seed);
  const size_t span = len_hi - len_lo + 1;
  for (size_t i = 0; i < n; ++i) {
    const size_t len = len_lo + rng.NextBounded(span);
    std::string s(len, 'a');
    for (auto& ch : s) {
      ch = static_cast<char>('a' + rng.NextBounded(26));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<int64_t> SelectivityColumn(size_t n, uint64_t seed) {
  return UniformInt64(n, 0, 99, seed);
}

std::vector<uint8_t> ExactSelectivityBitmap(size_t n, double selectivity_pct,
                                            uint64_t seed) {
  CEJ_CHECK(selectivity_pct >= 0.0 && selectivity_pct <= 100.0);
  std::vector<uint8_t> bitmap(n, 0);
  const size_t ones = static_cast<size_t>(
      std::llround(static_cast<double>(n) * selectivity_pct / 100.0));
  // Fisher-Yates over indices: set the first `ones` of a random permutation.
  std::vector<uint32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  Rng rng(seed);
  for (size_t i = 0; i < ones && i + 1 < n; ++i) {
    const size_t j = i + rng.NextBounded(n - i);
    std::swap(idx[i], idx[j]);
  }
  for (size_t i = 0; i < ones; ++i) bitmap[idx[i]] = 1;
  return bitmap;
}

std::vector<uint32_t> ZipfRanks(size_t n, size_t n_items, double theta,
                                uint64_t seed) {
  CEJ_CHECK(n_items > 0);
  CEJ_CHECK(theta >= 0.0);
  // Precompute the CDF; n_items is small (vocabulary-scale) in practice.
  std::vector<double> cdf(n_items);
  double z = 0.0;
  for (size_t r = 0; r < n_items; ++r) {
    z += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf[r] = z;
  }
  for (auto& v : cdf) v /= z;
  std::vector<uint32_t> out(n);
  Rng rng(seed);
  for (auto& v : out) {
    const double u = rng.NextDouble();
    v = static_cast<uint32_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (v >= n_items) v = static_cast<uint32_t>(n_items - 1);
  }
  return out;
}

}  // namespace cej::workload
