#include "cej/workload/corpus.h"

#include <algorithm>

#include "cej/common/macros.h"

namespace cej::workload {
namespace {

// Random pronounceable-ish lowercase word of length in [5, 9].
std::string RandomWord(Rng& rng) {
  static constexpr char kVowels[] = "aeiou";
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxyz";
  const size_t len = 5 + rng.NextBounded(5);
  std::string w;
  w.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (i % 2 == 0) {
      w.push_back(kConsonants[rng.NextBounded(21)]);
    } else {
      w.push_back(kVowels[rng.NextBounded(5)]);
    }
  }
  return w;
}

// Misspelling: swap two adjacent characters or drop one.
std::string Misspell(const std::string& base, Rng& rng) {
  std::string w = base;
  if (w.size() < 3) return w + "x";
  if (rng.NextBounded(2) == 0) {
    const size_t p = 1 + rng.NextBounded(w.size() - 2);
    std::swap(w[p], w[p + 1]);
  } else {
    const size_t p = 1 + rng.NextBounded(w.size() - 2);
    w.erase(p, 1);
  }
  return w;
}

// Tense / plural style variant.
std::string Variant(const std::string& base, size_t which) {
  static constexpr const char* kSuffixes[] = {"s", "ed", "ing", "er"};
  return base + kSuffixes[which % 4];
}

}  // namespace

Corpus::Corpus(CorpusOptions options) : options_(options) {
  Rng rng(options_.seed);
  BuildGeneratedFamilies(rng);
  FinishConstruction();
}

Corpus::Corpus(CorpusOptions options,
               std::vector<std::vector<std::string>> explicit_families)
    : options_(options), families_(std::move(explicit_families)) {
  CEJ_CHECK(!families_.empty());
  FinishConstruction();
}

void Corpus::BuildGeneratedFamilies(Rng& rng) {
  CEJ_CHECK(options_.variants_per_family >= 1);
  families_.reserve(options_.num_families);
  for (size_t f = 0; f < options_.num_families; ++f) {
    std::vector<std::string> family;
    const std::string base = RandomWord(rng);
    family.push_back(base);
    size_t variant_idx = 0;
    while (family.size() < options_.variants_per_family) {
      std::string candidate;
      switch (rng.NextBounded(3)) {
        case 0:
          candidate = Misspell(base, rng);
          break;
        case 1:
          candidate = Variant(base, variant_idx++);
          break;
        default:
          // Synonym with unrelated surface form ("bbq" ~ "barbecue").
          candidate = RandomWord(rng);
          break;
      }
      if (std::find(family.begin(), family.end(), candidate) ==
          family.end()) {
        family.push_back(std::move(candidate));
      }
    }
    families_.push_back(std::move(family));
  }
}

void Corpus::FinishConstruction() {
  // De-duplicate across families: a surface form may only mean one thing.
  for (size_t f = 0; f < families_.size(); ++f) {
    auto& family = families_[f];
    family.erase(std::remove_if(family.begin(), family.end(),
                                [&](const std::string& w) {
                                  return family_of_.count(w) > 0;
                                }),
                 family.end());
    CEJ_CHECK(!family.empty());
    for (const auto& w : family) {
      family_of_.emplace(w, static_cast<int64_t>(f));
      words_.push_back(w);
    }
  }
  // Noise vocabulary (disjoint from family words).
  Rng rng(options_.seed ^ 0xabcdefULL);
  while (noise_words_.size() < options_.num_noise_words) {
    std::string w = RandomWord(rng);
    if (family_of_.count(w) == 0) {
      family_of_.emplace(w, -1);
      noise_words_.push_back(w);
      words_.push_back(std::move(w));
    }
  }
  // Context vocabulary: 4 dedicated context words per family.
  family_contexts_.resize(families_.size());
  for (auto& ctx : family_contexts_) {
    for (int i = 0; i < 4; ++i) {
      std::string w = RandomWord(rng);
      // Context words may collide with noise words harmlessly, but keep
      // them out of families so ground truth stays exact.
      while (family_of_.count(w) > 0 && family_of_.at(w) >= 0) {
        w = RandomWord(rng);
      }
      ctx.push_back(std::move(w));
    }
  }
}

int64_t Corpus::FamilyOf(const std::string& word) const {
  auto it = family_of_.find(word);
  return it == family_of_.end() ? -1 : it->second;
}

bool Corpus::SameFamily(const std::string& a, const std::string& b) const {
  const int64_t fa = FamilyOf(a);
  return fa >= 0 && fa == FamilyOf(b);
}

model::ConceptLexicon Corpus::MakeLexicon() const {
  model::ConceptLexicon lexicon;
  for (size_t f = 0; f < families_.size(); ++f) {
    for (const auto& w : families_[f]) {
      lexicon.Add(w, static_cast<uint32_t>(f));
    }
  }
  return lexicon;
}

std::vector<std::string> Corpus::GenerateTokenStream(size_t num_sentences,
                                                     uint64_t seed) const {
  std::vector<std::string> tokens;
  tokens.reserve(num_sentences * 5);
  Rng rng(seed);
  for (size_t s = 0; s < num_sentences; ++s) {
    const size_t f = rng.NextBounded(families_.size());
    const auto& family = families_[f];
    const auto& ctx = family_contexts_[f];
    // [ctx ctx member ctx ctx] — member position varies by context draw.
    tokens.push_back(ctx[rng.NextBounded(ctx.size())]);
    tokens.push_back(ctx[rng.NextBounded(ctx.size())]);
    tokens.push_back(family[rng.NextBounded(family.size())]);
    tokens.push_back(ctx[rng.NextBounded(ctx.size())]);
    // Occasional noise word keeps negatives trained.
    if (!noise_words_.empty() && rng.NextBounded(4) == 0) {
      tokens.push_back(noise_words_[rng.NextBounded(noise_words_.size())]);
    } else {
      tokens.push_back(ctx[rng.NextBounded(ctx.size())]);
    }
  }
  return tokens;
}

std::vector<std::string> Corpus::SampleWords(size_t n,
                                             double family_fraction,
                                             uint64_t seed) const {
  CEJ_CHECK(family_fraction >= 0.0 && family_fraction <= 1.0);
  std::vector<std::string> out;
  out.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool from_family =
        noise_words_.empty() || rng.NextDouble() < family_fraction;
    if (from_family) {
      const auto& family = families_[rng.NextBounded(families_.size())];
      out.push_back(family[rng.NextBounded(family.size())]);
    } else {
      out.push_back(noise_words_[rng.NextBounded(noise_words_.size())]);
    }
  }
  return out;
}

}  // namespace cej::workload
