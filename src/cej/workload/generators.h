// Synthetic workload generators. Every generator takes an explicit seed;
// identical seeds produce identical data (paper: "experiments with
// synthetic data use the same random number generator seed").

#ifndef CEJ_WORKLOAD_GENERATORS_H_
#define CEJ_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cej/la/matrix.h"

namespace cej::workload {

/// n random unit vectors (rows) of dimension `dim`, i.i.d. Gaussian then
/// L2-normalized — the standard isotropic embedding workload.
la::Matrix RandomUnitVectors(size_t n, size_t dim, uint64_t seed);

/// Uniform random integers in [lo, hi].
std::vector<int64_t> UniformInt64(size_t n, int64_t lo, int64_t hi,
                                  uint64_t seed);

/// Uniform random dates (days since epoch) in [lo, hi].
std::vector<int32_t> UniformDates(size_t n, int32_t lo, int32_t hi,
                                  uint64_t seed);

/// Random lowercase ASCII strings with lengths uniform in [len_lo, len_hi].
std::vector<std::string> RandomStrings(size_t n, size_t len_lo,
                                       size_t len_hi, uint64_t seed);

/// A column of uniform values in [0, 100) so that the predicate
/// `col < s` selects exactly ~s% of rows — the selectivity-control knob of
/// the Figure 15-17 sweeps.
std::vector<int64_t> SelectivityColumn(size_t n, uint64_t seed);

/// Bitmap with exactly round(n * selectivity_pct / 100) bits set, at
/// uniformly random positions.
std::vector<uint8_t> ExactSelectivityBitmap(size_t n, double selectivity_pct,
                                            uint64_t seed);

/// Zipf-distributed ranks in [0, n_items): rank r drawn with probability
/// proportional to 1 / (r+1)^theta.
std::vector<uint32_t> ZipfRanks(size_t n, size_t n_items, double theta,
                                uint64_t seed);

}  // namespace cej::workload

#endif  // CEJ_WORKLOAD_GENERATORS_H_
