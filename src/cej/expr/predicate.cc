#include "cej/expr/predicate.h"

#include <algorithm>

namespace cej::expr {
namespace {

using storage::Column;
using storage::DataType;
using storage::Relation;
using storage::Schema;

template <typename T>
bool Compare(const T& lhs, CmpOp op, const T& rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

class CmpPredicate final : public Predicate {
 public:
  CmpPredicate(std::string column, CmpOp op, Literal value)
      : column_(std::move(column)), op_(op), value_(std::move(value)) {}

  Status Validate(const Schema& schema) const override {
    CEJ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_));
    const storage::Field& f = schema.field(idx);
    switch (f.type) {
      case DataType::kInt64:
      case DataType::kDate:
        if (!std::holds_alternative<int64_t>(value_)) {
          return Status::InvalidArgument("predicate on '" + column_ +
                                         "': expected integer literal");
        }
        return Status::OK();
      case DataType::kDouble:
        if (!std::holds_alternative<double>(value_) &&
            !std::holds_alternative<int64_t>(value_)) {
          return Status::InvalidArgument("predicate on '" + column_ +
                                         "': expected numeric literal");
        }
        return Status::OK();
      case DataType::kString:
        if (!std::holds_alternative<std::string>(value_)) {
          return Status::InvalidArgument("predicate on '" + column_ +
                                         "': expected string literal");
        }
        return Status::OK();
      case DataType::kVector:
        return Status::InvalidArgument(
            "predicate on '" + column_ +
            "': relational predicates do not apply to vector columns; use "
            "an E-join / E-selection condition");
    }
    return Status::Internal("unreachable");
  }

  void Eval(const Relation& rel, std::vector<uint32_t>* out) const override {
    // Resolve the column once and run a typed tight loop: this is the
    // measured pre-filter path of the selectivity experiments.
    const Column* col = rel.ColumnByName(column_).value();
    const uint32_t n = static_cast<uint32_t>(rel.num_rows());
    switch (col->type()) {
      case DataType::kInt64: {
        const auto& v = col->int64_values();
        const int64_t rhs = std::get<int64_t>(value_);
        for (uint32_t r = 0; r < n; ++r) {
          if (Compare(v[r], op_, rhs)) out->push_back(r);
        }
        return;
      }
      case DataType::kDate: {
        const auto& v = col->date_values();
        const int64_t rhs = std::get<int64_t>(value_);
        for (uint32_t r = 0; r < n; ++r) {
          if (Compare(static_cast<int64_t>(v[r]), op_, rhs)) {
            out->push_back(r);
          }
        }
        return;
      }
      case DataType::kDouble: {
        const auto& v = col->double_values();
        const double rhs = std::holds_alternative<double>(value_)
                               ? std::get<double>(value_)
                               : static_cast<double>(
                                     std::get<int64_t>(value_));
        for (uint32_t r = 0; r < n; ++r) {
          if (Compare(v[r], op_, rhs)) out->push_back(r);
        }
        return;
      }
      case DataType::kString: {
        const auto& v = col->string_values();
        const std::string& rhs = std::get<std::string>(value_);
        for (uint32_t r = 0; r < n; ++r) {
          if (Compare(v[r], op_, rhs)) out->push_back(r);
        }
        return;
      }
      case DataType::kVector:
        break;
    }
    CEJ_CHECK(false);
  }

  bool Matches(const Relation& rel, uint32_t row) const override {
    const Column* col = rel.ColumnByName(column_).value();
    switch (col->type()) {
      case DataType::kInt64:
        return Compare(col->int64_values()[row], op_,
                       std::get<int64_t>(value_));
      case DataType::kDate:
        return Compare(static_cast<int64_t>(col->date_values()[row]), op_,
                       std::get<int64_t>(value_));
      case DataType::kDouble: {
        const double rhs = std::holds_alternative<double>(value_)
                               ? std::get<double>(value_)
                               : static_cast<double>(
                                     std::get<int64_t>(value_));
        return Compare(col->double_values()[row], op_, rhs);
      }
      case DataType::kString:
        return Compare(col->string_values()[row], op_,
                       std::get<std::string>(value_));
      case DataType::kVector:
        break;
    }
    CEJ_CHECK(false);
    return false;
  }

 private:
  std::string column_;
  CmpOp op_;
  Literal value_;
};

class AndPredicate final : public Predicate {
 public:
  AndPredicate(PredicatePtr lhs, PredicatePtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Validate(const Schema& schema) const override {
    CEJ_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  void Eval(const Relation& rel, std::vector<uint32_t>* out) const override {
    for (uint32_t r = 0; r < rel.num_rows(); ++r) {
      if (Matches(rel, r)) out->push_back(r);
    }
  }

  bool Matches(const Relation& rel, uint32_t row) const override {
    return lhs_->Matches(rel, row) && rhs_->Matches(rel, row);
  }

 private:
  PredicatePtr lhs_, rhs_;
};

class OrPredicate final : public Predicate {
 public:
  OrPredicate(PredicatePtr lhs, PredicatePtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Validate(const Schema& schema) const override {
    CEJ_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  void Eval(const Relation& rel, std::vector<uint32_t>* out) const override {
    for (uint32_t r = 0; r < rel.num_rows(); ++r) {
      if (Matches(rel, r)) out->push_back(r);
    }
  }

  bool Matches(const Relation& rel, uint32_t row) const override {
    return lhs_->Matches(rel, row) || rhs_->Matches(rel, row);
  }

 private:
  PredicatePtr lhs_, rhs_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}

  Status Validate(const Schema& schema) const override {
    return inner_->Validate(schema);
  }

  void Eval(const Relation& rel, std::vector<uint32_t>* out) const override {
    for (uint32_t r = 0; r < rel.num_rows(); ++r) {
      if (Matches(rel, r)) out->push_back(r);
    }
  }

  bool Matches(const Relation& rel, uint32_t row) const override {
    return !inner_->Matches(rel, row);
  }

 private:
  PredicatePtr inner_;
};

class TruePredicate final : public Predicate {
 public:
  Status Validate(const Schema&) const override { return Status::OK(); }

  void Eval(const Relation& rel, std::vector<uint32_t>* out) const override {
    out->reserve(out->size() + rel.num_rows());
    for (uint32_t r = 0; r < rel.num_rows(); ++r) out->push_back(r);
  }

  bool Matches(const Relation&, uint32_t) const override { return true; }
};

}  // namespace

PredicatePtr Cmp(std::string column, CmpOp op, Literal value) {
  return std::make_shared<CmpPredicate>(std::move(column), op,
                                        std::move(value));
}

PredicatePtr And(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<AndPredicate>(std::move(lhs), std::move(rhs));
}

PredicatePtr Or(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<OrPredicate>(std::move(lhs), std::move(rhs));
}

PredicatePtr Not(PredicatePtr inner) {
  return std::make_shared<NotPredicate>(std::move(inner));
}

PredicatePtr True() { return std::make_shared<TruePredicate>(); }

Result<std::vector<uint32_t>> Filter(const storage::Relation& rel,
                                     const PredicatePtr& pred) {
  CEJ_RETURN_IF_ERROR(pred->Validate(rel.schema()));
  std::vector<uint32_t> out;
  pred->Eval(rel, &out);
  return out;
}

}  // namespace cej::expr
