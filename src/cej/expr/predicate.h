// Relational predicates over columns.
//
// These drive the relational selectivity that the access-path experiments
// (Figures 15-17) sweep: pre-filtering a relation before (or while) probing
// a vector index versus scanning. Predicates evaluate to selection vectors
// (sorted row-id lists).

#ifndef CEJ_EXPR_PREDICATE_H_
#define CEJ_EXPR_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cej/common/status.h"
#include "cej/storage/relation.h"

namespace cej::expr {

/// Comparison operators for Cmp predicates.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// A literal comparable against int64 / double / date / string columns.
using Literal = std::variant<int64_t, double, std::string>;

/// Abstract boolean predicate over one relation's rows.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Checks the predicate is well-typed against `schema`.
  virtual Status Validate(const storage::Schema& schema) const = 0;

  /// Evaluates over all rows, appending each satisfying row id to `out`
  /// in ascending order. `rel` must satisfy Validate.
  virtual void Eval(const storage::Relation& rel,
                    std::vector<uint32_t>* out) const = 0;

  /// Row-level evaluation (used by operators that interleave relational
  /// filtering with vector processing, e.g. pre-filtered index probes).
  virtual bool Matches(const storage::Relation& rel, uint32_t row) const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// column <op> literal.
PredicatePtr Cmp(std::string column, CmpOp op, Literal value);
/// Conjunction.
PredicatePtr And(PredicatePtr lhs, PredicatePtr rhs);
/// Disjunction.
PredicatePtr Or(PredicatePtr lhs, PredicatePtr rhs);
/// Negation.
PredicatePtr Not(PredicatePtr inner);
/// Matches every row (selectivity 100%).
PredicatePtr True();

/// Evaluates `pred` over `rel` after validation; returns the sorted list of
/// matching row ids.
Result<std::vector<uint32_t>> Filter(const storage::Relation& rel,
                                     const PredicatePtr& pred);

}  // namespace cej::expr

#endif  // CEJ_EXPR_PREDICATE_H_
