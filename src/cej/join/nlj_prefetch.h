// Prefetch-optimized E-NLJ (paper Eq. "E-NLJ Prefetch Optimization"):
// every tuple is embedded exactly once (|R| + |S| model calls) before a
// pairwise nested-loop join over the cached vectors. This is the logically
// optimized formulation Figures 8-10 evaluate, with the classic
// smaller-relation-inner heuristic exposed as a knob (Figure 10 quantifies
// its ~35% effect at 1e10 operations).

#ifndef CEJ_JOIN_NLJ_PREFETCH_H_
#define CEJ_JOIN_NLJ_PREFETCH_H_

#include <string>
#include <vector>

#include "cej/common/status.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"
#include "cej/model/embedding_model.h"

namespace cej::join {

/// Loop-order policy for the NLJ.
enum class LoopOrder {
  kAsGiven,        ///< left outer, right inner (no reordering)
  kSmallerInner,   ///< put the smaller relation in the inner loop
};

/// Options for the prefetch NLJ.
struct NljOptions : JoinOptions {
  LoopOrder loop_order = LoopOrder::kAsGiven;
};

/// Embeds both sides once, then runs the pairwise NLJ.
Result<JoinResult> PrefetchNljJoin(const std::vector<std::string>& left,
                                   const std::vector<std::string>& right,
                                   const model::EmbeddingModel& model,
                                   const JoinCondition& condition,
                                   const NljOptions& options = {});

/// Vector-domain core: joins two already-embedded batches (one unit vector
/// per row). Supports threshold and top-k conditions.
Result<JoinResult> NljJoinMatrices(const la::Matrix& left,
                                   const la::Matrix& right,
                                   const JoinCondition& condition,
                                   const NljOptions& options = {});

/// Streaming form of NljJoinMatrices: emits pair chunks into `sink`
/// (unordered; honours early termination) instead of materializing, and
/// returns the counters for the work actually performed.
Result<JoinStats> NljJoinMatricesToSink(const la::Matrix& left,
                                        const la::Matrix& right,
                                        const JoinCondition& condition,
                                        const NljOptions& options,
                                        JoinSink* sink);

}  // namespace cej::join

#endif  // CEJ_JOIN_NLJ_PREFETCH_H_
