#include "cej/join/join_operator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cej/common/timer.h"
#include "cej/join/index_join.h"
#include "cej/join/nlj_naive.h"
#include "cej/join/nlj_prefetch.h"
#include "cej/join/pipelined_tensor.h"
#include "cej/join/sharded_join.h"
#include "cej/join/tensor_join.h"

namespace cej::join {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool HasStrings(const JoinInputs& in) {
  return in.left_strings != nullptr && in.right_strings != nullptr &&
         in.model != nullptr && in.model->dim() > 0;
}

bool HasModel(const JoinInputs& in) {
  return in.model != nullptr && in.model->dim() > 0;
}

bool HasLeftSide(const JoinInputs& in) {
  return in.left_vectors != nullptr ||
         (in.left_strings != nullptr && HasModel(in));
}

bool HasRightSide(const JoinInputs& in) {
  return in.right_vectors != nullptr ||
         (in.right_strings != nullptr && HasModel(in));
}

// |S| surviving the pushed-down relational predicates.
size_t FilteredRight(const JoinWorkload& w) {
  const double sel = std::clamp(w.right_selectivity, 0.0, 1.0);
  return static_cast<size_t>(static_cast<double>(w.right_rows) * sel + 0.5);
}

// Ensures both sides exist in the vector domain, embedding the string
// representation on demand (the prefetch primitive) — per side, so a
// caller with one side already embedded (e.g. a cached left batch plus a
// fresh right feed) never has its supplied vectors ignored or recomputed.
// On-demand embedding parallelizes over `pool` when one is supplied.
// `storage` keeps freshly embedded matrices alive; `stats` absorbs the
// model counters.
Status MaterializeVectors(const JoinInputs& in, ThreadPool* pool,
                          const la::Matrix** left, const la::Matrix** right,
                          std::pair<la::Matrix, la::Matrix>* storage,
                          JoinStats* stats) {
  *left = in.left_vectors;
  *right = in.right_vectors;
  if (*left != nullptr && *right != nullptr) return Status::OK();
  if ((*left == nullptr && in.left_strings == nullptr) ||
      (*right == nullptr && in.right_strings == nullptr) || !HasModel(in)) {
    return Status::InvalidArgument(
        "E-join: operator needs embedded vectors (or strings plus a "
        "model) on both sides");
  }
  JoinStats embed_stats;
  const uint64_t calls_before = in.model->embed_calls();
  WallTimer timer;
  if (*left == nullptr) {
    storage->first = in.model->EmbedBatch(*in.left_strings, pool);
    embed_stats.peak_buffer_bytes += storage->first.MemoryBytes();
    *left = &storage->first;
  }
  if (*right == nullptr) {
    storage->second = in.model->EmbedBatch(*in.right_strings, pool);
    embed_stats.peak_buffer_bytes += storage->second.MemoryBytes();
    *right = &storage->second;
  }
  embed_stats.embed_seconds = timer.ElapsedSeconds();
  embed_stats.model_calls = in.model->embed_calls() - calls_before;
  *stats += embed_stats;
  return Status::OK();
}

// Ensures the left side exists in the vector domain (probe queries).
Status MaterializeLeftVectors(const JoinInputs& in, ThreadPool* pool,
                              const la::Matrix** left, la::Matrix* storage,
                              JoinStats* stats) {
  if (in.left_vectors != nullptr) {
    *left = in.left_vectors;
    return Status::OK();
  }
  if (in.left_strings == nullptr || in.model == nullptr ||
      in.model->dim() == 0) {
    return Status::InvalidArgument(
        "E-join: operator needs left vectors or left strings plus a model");
  }
  JoinStats embed_stats;
  const uint64_t calls_before = in.model->embed_calls();
  WallTimer timer;
  *storage = in.model->EmbedBatch(*in.left_strings, pool);
  embed_stats.embed_seconds = timer.ElapsedSeconds();
  embed_stats.model_calls = in.model->embed_calls() - calls_before;
  embed_stats.peak_buffer_bytes = storage->MemoryBytes();
  *stats += embed_stats;
  *left = storage;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// naive_nlj — the Figure 8 baseline: model invoked inside the pair loop.
// ---------------------------------------------------------------------------
class NaiveNljOperator : public JoinOperator {
 public:
  std::string_view Name() const override { return "naive_nlj"; }

  JoinOperatorTraits Traits() const override {
    JoinOperatorTraits t;
    t.needs_strings = true;
    t.supports_topk = false;
    return t;
  }

  double EstimateCost(const JoinWorkload& w,
                      const CostParams& p) const override {
    // Priced through the calibration feature decomposition (join_cost.h):
    // the quote and the coefficients the adaptive calibrator refits are
    // the same numbers by construction. Same below for every scan/probe
    // operator with a coefficient-linear cost.
    return PriceFeatures(FeaturesForOperator(Name(), w, p), p);
  }

  Result<JoinStats> Run(const JoinInputs& inputs,
                        const JoinCondition& condition,
                        const JoinOptions& options,
                        JoinSink* sink) const override {
    CEJ_RETURN_IF_ERROR(ValidateInputs(inputs, condition));
    return NaiveNljJoinToSink(*inputs.left_strings, *inputs.right_strings,
                              *inputs.model, condition.threshold, options,
                              sink);
  }
};

// ---------------------------------------------------------------------------
// prefetch_nlj — embed once, pairwise NLJ over cached vectors.
// ---------------------------------------------------------------------------
class PrefetchNljOperator : public JoinOperator {
 public:
  std::string_view Name() const override { return "prefetch_nlj"; }

  JoinOperatorTraits Traits() const override {
    JoinOperatorTraits t;
    t.needs_vectors = true;
    return t;
  }

  double EstimateCost(const JoinWorkload& w,
                      const CostParams& p) const override {
    return PriceFeatures(FeaturesForOperator(Name(), w, p), p);
  }

  Result<JoinStats> Run(const JoinInputs& inputs,
                        const JoinCondition& condition,
                        const JoinOptions& options,
                        JoinSink* sink) const override {
    CEJ_RETURN_IF_ERROR(ValidateInputs(inputs, condition));
    JoinStats total;
    const la::Matrix* left = nullptr;
    const la::Matrix* right = nullptr;
    std::pair<la::Matrix, la::Matrix> storage;
    CEJ_RETURN_IF_ERROR(MaterializeVectors(inputs, options.pool, &left,
                                           &right, &storage, &total));
    NljOptions nlj_options;
    static_cast<JoinOptions&>(nlj_options) = options;
    CEJ_ASSIGN_OR_RETURN(
        JoinStats join_stats,
        NljJoinMatricesToSink(*left, *right, condition, nlj_options, sink));
    total += join_stats;
    return total;
  }
};

// ---------------------------------------------------------------------------
// tensor — blocked-GEMM similarity sweep (Figures 6/7).
// ---------------------------------------------------------------------------
class TensorJoinOperator : public JoinOperator {
 public:
  std::string_view Name() const override { return "tensor"; }

  JoinOperatorTraits Traits() const override {
    JoinOperatorTraits t;
    t.needs_vectors = true;
    return t;
  }

  double EstimateCost(const JoinWorkload& w,
                      const CostParams& p) const override {
    // Filter S (linear), then tensor-join against the survivors — the
    // "scan" access path of Section VI.E. Warm embedding-cache columns
    // drop their side's model term (cache-aware costing).
    return PriceFeatures(FeaturesForOperator(Name(), w, p), p);
  }

  Result<JoinStats> Run(const JoinInputs& inputs,
                        const JoinCondition& condition,
                        const JoinOptions& options,
                        JoinSink* sink) const override {
    CEJ_RETURN_IF_ERROR(ValidateInputs(inputs, condition));
    JoinStats total;
    const la::Matrix* left = nullptr;
    const la::Matrix* right = nullptr;
    std::pair<la::Matrix, la::Matrix> storage;
    CEJ_RETURN_IF_ERROR(MaterializeVectors(inputs, options.pool, &left,
                                           &right, &storage, &total));
    TensorJoinOptions tensor_options;
    static_cast<JoinOptions&>(tensor_options) = options;
    CEJ_ASSIGN_OR_RETURN(JoinStats join_stats,
                         TensorJoinMatricesToSink(*left, *right, condition,
                                                  tensor_options, sink));
    total += join_stats;
    return total;
  }
};

// ---------------------------------------------------------------------------
// index — per-tuple probes into a prebuilt vector index (Section IV.B).
// ---------------------------------------------------------------------------
class IndexJoinOperator : public JoinOperator {
 public:
  std::string_view Name() const override { return "index"; }

  JoinOperatorTraits Traits() const override {
    JoinOperatorTraits t;
    t.needs_index = true;
    t.exact = false;
    return t;
  }

  double EstimateCost(const JoinWorkload& w,
                      const CostParams& p) const override {
    if (!w.index_available) return kInf;
    // Per-probe traversal over the FULL index (pre-filter semantics), with
    // the beam inflated for top-k > 1 and further for range conditions
    // (which probe via the top-k mechanism and post-filter) — the beam
    // factors and the shard resolver Run() executes live inside the
    // feature decomposition, so the quote matches both the executed
    // configuration and the coefficients the calibrator refits.
    return PriceFeatures(FeaturesForOperator(Name(), w, p), p);
  }

  Result<JoinStats> Run(const JoinInputs& inputs,
                        const JoinCondition& condition,
                        const JoinOptions& options,
                        JoinSink* sink) const override {
    CEJ_RETURN_IF_ERROR(ValidateInputs(inputs, condition));
    JoinStats total;
    const la::Matrix* left = nullptr;
    la::Matrix storage;
    CEJ_RETURN_IF_ERROR(
        MaterializeLeftVectors(inputs, options.pool, &left, &storage, &total));
    IndexJoinOptions index_options;
    static_cast<JoinOptions&>(index_options) = options;
    index_options.filter = inputs.right_filter;
    CEJ_ASSIGN_OR_RETURN(
        JoinStats join_stats,
        IndexJoinToSink(*left, *inputs.right_index, condition, index_options,
                        sink));
    total += join_stats;
    return total;
  }
};

// ---------------------------------------------------------------------------
// pipelined_tensor — right-side embedding overlapped with the GEMM sweep.
// ---------------------------------------------------------------------------
class PipelinedTensorOperator : public JoinOperator {
 public:
  std::string_view Name() const override { return "pipelined_tensor"; }

  JoinOperatorTraits Traits() const override {
    JoinOperatorTraits t;
    // Validation-wise the operator accepts whatever the tensor join does
    // (vectors, or strings plus a model, per side); the extra trait tells
    // the planner it prefers the right side as a raw string stream.
    t.needs_vectors = true;
    t.streams_right_strings = true;
    return t;
  }

  double EstimateCost(const JoinWorkload& w,
                      const CostParams& p) const override {
    // Without a string-streamable right side there is no embedding left to
    // hide — the plain tensor operator covers that shape, so bow out of
    // the cost scan entirely. (The executor also withdraws streamability
    // when the embedding cache already holds the right column: a warm
    // cache leaves nothing to overlap, and plain `tensor` wins the tie.)
    if (!w.right_strings_streamable) return kInf;
    return static_cast<double>(w.right_rows) * p.access +
           PipelinedTensorJoinCost(w.left_rows, FilteredRight(w), p,
                                   w.left_embed_cached,
                                   w.right_embed_cached);
  }

  Result<JoinStats> Run(const JoinInputs& inputs,
                        const JoinCondition& condition,
                        const JoinOptions& options,
                        JoinSink* sink) const override {
    CEJ_RETURN_IF_ERROR(ValidateInputs(inputs, condition));
    PipelinedTensorOptions pipe_options;
    static_cast<JoinOptions&>(pipe_options) = options;
    // Pipeline only when the right side NEEDS embedding: supplied vectors
    // are never ignored or recomputed (the MaterializeVectors contract).
    if (inputs.right_vectors == nullptr && inputs.right_strings != nullptr &&
        HasModel(inputs)) {
      JoinStats total;
      const la::Matrix* left = nullptr;
      la::Matrix storage;
      CEJ_RETURN_IF_ERROR(MaterializeLeftVectors(inputs, options.pool, &left,
                                                 &storage, &total));
      CEJ_ASSIGN_OR_RETURN(
          JoinStats join_stats,
          PipelinedTensorJoinToSink(*left, *inputs.right_strings,
                                    *inputs.model, condition, pipe_options,
                                    sink));
      total += join_stats;
      return total;
    }
    // Both sides already in the vector domain: nothing to pipeline —
    // degrade gracefully to the plain blocked sweep.
    JoinStats total;
    const la::Matrix* left = nullptr;
    const la::Matrix* right = nullptr;
    std::pair<la::Matrix, la::Matrix> storage;
    CEJ_RETURN_IF_ERROR(MaterializeVectors(inputs, options.pool, &left,
                                           &right, &storage, &total));
    CEJ_ASSIGN_OR_RETURN(JoinStats join_stats,
                         TensorJoinMatricesToSink(*left, *right, condition,
                                                  pipe_options, sink));
    total += join_stats;
    return total;
  }
};

// ---------------------------------------------------------------------------
// sharded_tensor — the blocked sweep partitioned over right-relation row
// shards, one shard per pool worker, merged through one sink.
// ---------------------------------------------------------------------------
class ShardedTensorOperator : public JoinOperator {
 public:
  std::string_view Name() const override { return "sharded_tensor"; }

  JoinOperatorTraits Traits() const override {
    JoinOperatorTraits t;
    t.needs_vectors = true;
    return t;
  }

  double EstimateCost(const JoinWorkload& w,
                      const CostParams& p) const override {
    // Price the shard count Run() will ACTUALLY use — the same resolver
    // execution calls, so a pinned knob is never quoted at the auto shape.
    const size_t n = FilteredRight(w);
    const size_t shards = ResolveShardCount(
        n, w.pool_threads, w.shard_count, ShardedJoinOptions{}.min_shard_rows);
    // Eligibility: with no workers to fan out across, or a single shard
    // (below the shard-row floor), this IS the tensor operator — bow out
    // and let it take those shapes.
    if (w.pool_threads <= 1 || shards <= 1) return kInf;
    return PriceFeatures(FeaturesForOperator(Name(), w, p), p);
  }

  Result<JoinStats> Run(const JoinInputs& inputs,
                        const JoinCondition& condition,
                        const JoinOptions& options,
                        JoinSink* sink) const override {
    CEJ_RETURN_IF_ERROR(ValidateInputs(inputs, condition));
    JoinStats total;
    const la::Matrix* left = nullptr;
    const la::Matrix* right = nullptr;
    std::pair<la::Matrix, la::Matrix> storage;
    CEJ_RETURN_IF_ERROR(MaterializeVectors(inputs, options.pool, &left,
                                           &right, &storage, &total));
    ShardedJoinOptions sharded_options;
    static_cast<JoinOptions&>(sharded_options) = options;
    CEJ_ASSIGN_OR_RETURN(
        JoinStats join_stats,
        ShardedTensorJoinMatricesToSink(*left, *right, condition,
                                        sharded_options, sink));
    total += join_stats;
    return total;
  }
};

}  // namespace

Status JoinOperator::ValidateInputs(const JoinInputs& inputs,
                                    const JoinCondition& condition) const {
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  const JoinOperatorTraits traits = Traits();
  const std::string name(Name());
  if (condition.kind == JoinCondition::Kind::kTopK && !traits.supports_topk) {
    return Status::Unimplemented(
        name + ": top-k conditions unsupported; run plan::Optimize (or use "
               "a prefetched operator) to enable top-k");
  }
  if (condition.kind == JoinCondition::Kind::kThreshold &&
      !traits.supports_threshold) {
    return Status::Unimplemented(name +
                                 ": threshold conditions unsupported");
  }
  if (traits.needs_strings && !HasStrings(inputs)) {
    return Status::InvalidArgument(
        name + ": requires string inputs and an embedding model");
  }
  if (traits.needs_vectors &&
      (!HasLeftSide(inputs) || !HasRightSide(inputs))) {
    return Status::InvalidArgument(
        name + ": requires embedded vectors (or strings plus a model) on "
               "both sides");
  }
  if (traits.needs_index) {
    if (inputs.right_index == nullptr) {
      return Status::InvalidArgument(name +
                                     ": requires a right-side vector index");
    }
    if (!HasLeftSide(inputs)) {
      return Status::InvalidArgument(
          name + ": requires left vectors (or strings plus a model)");
    }
  }
  return Status::OK();
}

JoinOperatorRegistry& JoinOperatorRegistry::Global() {
  static JoinOperatorRegistry* registry = [] {
    auto* r = new JoinOperatorRegistry();
    CEJ_CHECK(r->Register(MakeNaiveNljOperator()).ok());
    CEJ_CHECK(r->Register(MakePrefetchNljOperator()).ok());
    CEJ_CHECK(r->Register(MakeTensorJoinOperator()).ok());
    CEJ_CHECK(r->Register(MakeIndexJoinOperator()).ok());
    CEJ_CHECK(r->Register(MakePipelinedTensorOperator()).ok());
    CEJ_CHECK(r->Register(MakeShardedTensorOperator()).ok());
    return r;
  }();
  return *registry;
}

Status JoinOperatorRegistry::Register(
    std::unique_ptr<const JoinOperator> op) {
  CEJ_CHECK(op != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : ops_) {
    if (existing->Name() == op->Name()) {
      return Status::AlreadyExists("join operator '" +
                                   std::string(op->Name()) +
                                   "' already registered");
    }
  }
  ops_.push_back(std::move(op));
  return Status::OK();
}

Result<const JoinOperator*> JoinOperatorRegistry::Find(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& op : ops_) {
    if (op->Name() == name) return op.get();
  }
  std::string known;
  for (const auto& op : ops_) {
    if (!known.empty()) known += ", ";
    known += std::string(op->Name());
  }
  return Status::NotFound("no join operator named '" + std::string(name) +
                          "' (registered: " + known + ")");
}

std::vector<const JoinOperator*> JoinOperatorRegistry::operators() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const JoinOperator*> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) out.push_back(op.get());
  return out;
}

std::unique_ptr<const JoinOperator> MakeNaiveNljOperator() {
  return std::make_unique<NaiveNljOperator>();
}
std::unique_ptr<const JoinOperator> MakePrefetchNljOperator() {
  return std::make_unique<PrefetchNljOperator>();
}
std::unique_ptr<const JoinOperator> MakeTensorJoinOperator() {
  return std::make_unique<TensorJoinOperator>();
}
std::unique_ptr<const JoinOperator> MakeIndexJoinOperator() {
  return std::make_unique<IndexJoinOperator>();
}
std::unique_ptr<const JoinOperator> MakePipelinedTensorOperator() {
  return std::make_unique<PipelinedTensorOperator>();
}
std::unique_ptr<const JoinOperator> MakeShardedTensorOperator() {
  return std::make_unique<ShardedTensorOperator>();
}

}  // namespace cej::join
