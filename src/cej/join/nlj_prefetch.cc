#include "cej/join/nlj_prefetch.h"

#include <atomic>

#include "cej/common/timer.h"
#include "cej/join/join_sink.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Threshold NLJ over matrices with the requested loop order. Parallelism is
// over the outer relation; each worker streams a local buffer into the
// sink feed and polls the stop flag between outer rows.
void ThresholdNlj(const la::Matrix& outer, const la::Matrix& inner,
                  float threshold, bool swapped, const NljOptions& options,
                  SinkFeed* feed, std::atomic<uint64_t>* sims) {
  const size_t dim = outer.cols();
  auto run_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      if (feed->stopped()) break;
      const float* outer_vec = outer.Row(i);
      for (size_t j = 0; j < inner.rows(); ++j) {
        const float sim =
            la::Dot(outer_vec, inner.Row(j), dim, options.simd);
        if (sim >= threshold) {
          const uint32_t l = static_cast<uint32_t>(swapped ? j : i);
          const uint32_t r = static_cast<uint32_t>(swapped ? i : j);
          local.push_back({l, r, sim});
          // Flush inside the inner loop too: one low-threshold outer row
          // can match all of |S|, and chunked emission must hold then.
          feed->MaybeDeliver(&local);
        }
      }
      sims->fetch_add(inner.rows(), std::memory_order_relaxed);
      feed->MaybeDeliver(&local);
    }
    feed->Deliver(&local);
  };
  if (options.pool != nullptr) {
    options.pool->ParallelForRange(0, outer.rows(), run_rows);
  } else {
    run_rows(0, outer.rows());
  }
}

// Top-k per left row. Parallelism over left rows: each row's collector is
// owned by exactly one worker, so no synchronization beyond sink delivery.
void TopKNlj(const la::Matrix& left, const la::Matrix& right, size_t k,
             const NljOptions& options, SinkFeed* feed,
             std::atomic<uint64_t>* sims) {
  const size_t dim = left.cols();
  auto run_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      if (feed->stopped()) break;
      la::TopKCollector collector(k);
      const float* left_vec = left.Row(i);
      for (size_t j = 0; j < right.rows(); ++j) {
        collector.Push(la::Dot(left_vec, right.Row(j), dim, options.simd),
                       j);
      }
      for (const auto& scored : collector.TakeSorted()) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
      sims->fetch_add(right.rows(), std::memory_order_relaxed);
      feed->MaybeDeliver(&local);
    }
    feed->Deliver(&local);
  };
  if (options.pool != nullptr) {
    options.pool->ParallelForRange(0, left.rows(), run_rows);
  } else {
    run_rows(0, left.rows());
  }
}

}  // namespace

Result<JoinStats> NljJoinMatricesToSink(const la::Matrix& left,
                                        const la::Matrix& right,
                                        const JoinCondition& condition,
                                        const NljOptions& options,
                                        JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinInputs(left, right));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  JoinStats stats;
  WallTimer timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};
  switch (condition.kind) {
    case JoinCondition::Kind::kThreshold: {
      // Loop-order heuristic applies to the symmetric threshold condition:
      // keep the smaller relation inner for cache locality (Section V.A).
      const bool swap = options.loop_order == LoopOrder::kSmallerInner &&
                        left.rows() < right.rows();
      const la::Matrix& outer = swap ? right : left;
      const la::Matrix& inner = swap ? left : right;
      ThresholdNlj(outer, inner, condition.threshold, swap, options, &feed,
                   &sims);
      break;
    }
    case JoinCondition::Kind::kTopK:
      TopKNlj(left, right, condition.k, options, &feed, &sims);
      break;
  }
  stats.join_seconds = timer.ElapsedSeconds();
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  sink->Finish();
  return stats;
}

Result<JoinResult> NljJoinMatrices(const la::Matrix& left,
                                   const la::Matrix& right,
                                   const JoinCondition& condition,
                                   const NljOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      NljJoinMatricesToSink(left, right, condition, options, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

Result<JoinResult> PrefetchNljJoin(const std::vector<std::string>& left,
                                   const std::vector<std::string>& right,
                                   const model::EmbeddingModel& model,
                                   const JoinCondition& condition,
                                   const NljOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("prefetch NLJ: model has dim 0");
  }
  JoinStats embed_stats;
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer embed_timer;
  // The logical optimization: embed each tuple exactly once, up front.
  la::Matrix left_emb = model.EmbedBatch(left, options.pool);
  la::Matrix right_emb = model.EmbedBatch(right, options.pool);
  embed_stats.embed_seconds = embed_timer.ElapsedSeconds();
  embed_stats.model_calls = model.embed_calls() - model_calls_before;
  embed_stats.peak_buffer_bytes =
      left_emb.MemoryBytes() + right_emb.MemoryBytes();

  CEJ_ASSIGN_OR_RETURN(JoinResult result,
                       NljJoinMatrices(left_emb, right_emb, condition,
                                       options));
  result.stats += embed_stats;
  return result;
}

}  // namespace cej::join
