#include "cej/join/nlj_prefetch.h"

#include <mutex>

#include "cej/common/timer.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Threshold NLJ over matrices with the requested loop order. Parallelism is
// over the outer relation; each worker emits into a local buffer merged
// under a mutex, then pairs are canonically sorted.
void ThresholdNlj(const la::Matrix& outer, const la::Matrix& inner,
                  float threshold, bool swapped, const NljOptions& options,
                  std::vector<JoinPair>* pairs) {
  const size_t dim = outer.cols();
  std::mutex merge_mu;
  auto run_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      const float* outer_vec = outer.Row(i);
      for (size_t j = 0; j < inner.rows(); ++j) {
        const float sim =
            la::Dot(outer_vec, inner.Row(j), dim, options.simd);
        if (sim >= threshold) {
          const uint32_t l = static_cast<uint32_t>(swapped ? j : i);
          const uint32_t r = static_cast<uint32_t>(swapped ? i : j);
          local.push_back({l, r, sim});
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    pairs->insert(pairs->end(), local.begin(), local.end());
  };
  if (options.pool != nullptr) {
    options.pool->ParallelForRange(0, outer.rows(), run_rows);
  } else {
    run_rows(0, outer.rows());
  }
}

// Top-k per left row. Parallelism over left rows: each row's collector is
// owned by exactly one worker, so no synchronization beyond result merge.
void TopKNlj(const la::Matrix& left, const la::Matrix& right, size_t k,
             const NljOptions& options, std::vector<JoinPair>* pairs) {
  const size_t dim = left.cols();
  std::mutex merge_mu;
  auto run_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      la::TopKCollector collector(k);
      const float* left_vec = left.Row(i);
      for (size_t j = 0; j < right.rows(); ++j) {
        collector.Push(la::Dot(left_vec, right.Row(j), dim, options.simd),
                       j);
      }
      for (const auto& scored : collector.TakeSorted()) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    pairs->insert(pairs->end(), local.begin(), local.end());
  };
  if (options.pool != nullptr) {
    options.pool->ParallelForRange(0, left.rows(), run_rows);
  } else {
    run_rows(0, left.rows());
  }
}

}  // namespace

Result<JoinResult> NljJoinMatrices(const la::Matrix& left,
                                   const la::Matrix& right,
                                   const JoinCondition& condition,
                                   const NljOptions& options) {
  CEJ_RETURN_IF_ERROR(ValidateJoinInputs(left, right));
  JoinResult result;
  WallTimer timer;
  switch (condition.kind) {
    case JoinCondition::Kind::kThreshold: {
      // Loop-order heuristic applies to the symmetric threshold condition:
      // keep the smaller relation inner for cache locality (Section V.A).
      const bool swap = options.loop_order == LoopOrder::kSmallerInner &&
                        left.rows() < right.rows();
      const la::Matrix& outer = swap ? right : left;
      const la::Matrix& inner = swap ? left : right;
      ThresholdNlj(outer, inner, condition.threshold, swap, options,
                   &result.pairs);
      break;
    }
    case JoinCondition::Kind::kTopK:
      if (condition.k == 0) {
        return Status::InvalidArgument("NLJ: top-k with k == 0");
      }
      TopKNlj(left, right, condition.k, options, &result.pairs);
      break;
  }
  SortPairs(&result.pairs);
  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.similarity_computations =
      static_cast<uint64_t>(left.rows()) * right.rows();
  return result;
}

Result<JoinResult> PrefetchNljJoin(const std::vector<std::string>& left,
                                   const std::vector<std::string>& right,
                                   const model::EmbeddingModel& model,
                                   const JoinCondition& condition,
                                   const NljOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("prefetch NLJ: model has dim 0");
  }
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer embed_timer;
  // The logical optimization: embed each tuple exactly once, up front.
  la::Matrix left_emb = model.EmbedBatch(left);
  la::Matrix right_emb = model.EmbedBatch(right);
  const double embed_seconds = embed_timer.ElapsedSeconds();

  CEJ_ASSIGN_OR_RETURN(JoinResult result,
                       NljJoinMatrices(left_emb, right_emb, condition,
                                       options));
  result.stats.embed_seconds = embed_seconds;
  result.stats.model_calls = model.embed_calls() - model_calls_before;
  result.stats.peak_buffer_bytes =
      left_emb.MemoryBytes() + right_emb.MemoryBytes();
  return result;
}

}  // namespace cej::join
