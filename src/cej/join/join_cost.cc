#include "cej/join/join_cost.h"

#include <algorithm>
#include <cmath>

#include "cej/join/index_join.h"
#include "cej/join/sharded_join.h"

namespace cej::join {
namespace {

// |S| surviving the pushed-down relational predicates.
size_t FilteredRight(const JoinWorkload& w) {
  const double sel = std::clamp(w.right_selectivity, 0.0, 1.0);
  return static_cast<size_t>(static_cast<double>(w.right_rows) * sel + 0.5);
}

// Model invocations a prefetched operator pays per side, discounted by the
// expected embedding-cache state (a warm left and cold right pays |S| * M
// only — the partial hit is asymmetric by construction).
double UncachedModelCalls(const JoinWorkload& w, size_t filtered_right) {
  double calls = 0.0;
  if (!w.left_embed_cached) calls += static_cast<double>(w.left_rows);
  if (!w.right_embed_cached) calls += static_cast<double>(filtered_right);
  return calls;
}

// The index operator's effective beam width: top-k > 1 widens the beam,
// range conditions probe via the top-k mechanism with post-filtering and
// traverse roughly twice the candidates per beam slot on top of a 3x beam
// (the Figure 16/17 relative crossover shifts). Mirrors the historical
// probe pricing exactly, size_t truncation included.
double ProbeCandidateMultiplier(const JoinWorkload& w, const CostParams& p) {
  double beam_factor;
  double per_candidate_factor = 1.0;
  if (w.condition.kind == JoinCondition::Kind::kTopK) {
    beam_factor =
        1.0 + static_cast<double>(std::max<size_t>(w.condition.k, 1)) / 16.0;
  } else {
    beam_factor = 3.0;
    per_candidate_factor = 2.0;
  }
  const size_t ef_eff = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(p.probe_ef) * beam_factor));
  const double depth =
      w.right_rows > 1 ? std::log(static_cast<double>(w.right_rows)) : 1.0;
  return static_cast<double>(ef_eff) * depth * per_candidate_factor;
}

size_t ProbeShardCount(const JoinWorkload& w) {
  return ResolveShardCount(w.left_rows, w.pool_threads, w.shard_count,
                           IndexJoinOptions{}.min_shard_rows);
}

}  // namespace

double ParallelSpeedup(size_t shards, size_t workers, const CostParams& p) {
  const double parallelism = static_cast<double>(
      std::max<size_t>(std::min(shards, workers), 1));
  const double eta = std::clamp(p.parallel_efficiency, 0.0, 1.0);
  return std::max(1.0, 1.0 + (parallelism - 1.0) * eta);
}

double ESelectionCost(size_t n, const CostParams& p) {
  return static_cast<double>(n) * (p.access + p.model + p.compute);
}

double NaiveENljCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * static_cast<double>(n) *
         (p.access + p.model + p.compute);
}

double PrefetchENljCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * static_cast<double>(n) *
             (p.access + p.compute) +
         static_cast<double>(m + n) * p.model;
}

double TensorJoinCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * static_cast<double>(n) *
             (p.access + p.compute) * p.tensor_efficiency +
         static_cast<double>(m + n) * p.model;
}

double PipelinedTensorJoinCost(size_t m, size_t n, const CostParams& p,
                               bool left_embed_cached,
                               bool right_embed_cached) {
  const double embed_right =
      right_embed_cached ? 0.0 : static_cast<double>(n) * p.model;
  const double embed_left =
      left_embed_cached ? 0.0 : static_cast<double>(m) * p.model;
  const double sweep = static_cast<double>(m) * static_cast<double>(n) *
                       (p.access + p.compute) * p.tensor_efficiency;
  // rho = 1 hides the cheaper phase entirely (the ideal max(embed, sweep));
  // a calibrated rho < 1 charges back the fraction reality failed to
  // overlap, so the pipelined quote degrades continuously toward the
  // un-overlapped embed + sweep sum.
  const double rho = std::clamp(p.pipeline_overlap, 0.0, 1.0);
  const double hi = embed_right > sweep ? embed_right : sweep;
  const double lo = embed_right > sweep ? sweep : embed_right;
  return embed_left + hi + (1.0 - rho) * lo;
}

double ShardedJoinCost(size_t m, size_t n, size_t shards, size_t workers,
                       const CostParams& p) {
  const double s = static_cast<double>(std::max<size_t>(shards, 1));
  const double speedup = ParallelSpeedup(shards, workers, p);
  const double embed = static_cast<double>(m + n) * p.model;
  const double sweep = static_cast<double>(m) * static_cast<double>(n) *
                       (p.access + p.compute) * p.tensor_efficiency;
  const double merge = static_cast<double>(m) * s * p.compute;
  return embed + sweep / speedup + merge;
}

double IndexProbeCost(size_t n, const CostParams& p) {
  const double depth = n > 1 ? std::log(static_cast<double>(n)) : 1.0;
  return p.probe_base + p.probe_per_candidate *
                            static_cast<double>(p.probe_ef) * depth *
                            (p.access + p.compute);
}

double IndexJoinCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * IndexProbeCost(n, p) +
         static_cast<double>(m) * p.model;
}

double ShardedIndexJoinCost(size_t m, size_t n, size_t shards,
                            size_t workers, const CostParams& p) {
  const double speedup = ParallelSpeedup(shards, workers, p);
  return static_cast<double>(m) * IndexProbeCost(n, p) / speedup +
         static_cast<double>(m) * p.model;
}

double PriceFeatures(const CostFeatures& f, const CostParams& p) {
  const double pair_cost = p.access + p.compute;
  return f.fixed + f.model * p.model + f.pair * pair_cost +
         f.sweep * pair_cost * p.tensor_efficiency +
         f.probe * pair_cost * p.probe_per_candidate;
}

CostFeatures FeaturesForOperator(std::string_view op_name,
                                 const JoinWorkload& w, const CostParams& p) {
  CostFeatures f;
  const double m = static_cast<double>(w.left_rows);
  const double n = static_cast<double>(w.right_rows);
  const double filtered = static_cast<double>(FilteredRight(w));
  const double scan_access = n * p.access;  // Filtering S is linear.

  if (op_name == "naive_nlj") {
    // Model invoked inside the pair loop: the cache cannot help.
    f.model = m * filtered;
    f.pair = m * filtered;
    f.fixed = scan_access;
  } else if (op_name == "prefetch_nlj") {
    f.model = UncachedModelCalls(w, FilteredRight(w));
    f.pair = m * filtered;
    f.fixed = scan_access;
  } else if (op_name == "tensor") {
    f.model = UncachedModelCalls(w, FilteredRight(w));
    f.sweep = m * filtered;
    f.fixed = scan_access;
  } else if (op_name == "sharded_tensor") {
    const size_t shards =
        ResolveShardCount(FilteredRight(w), w.pool_threads, w.shard_count,
                          ShardedJoinOptions{}.min_shard_rows);
    const double speedup = ParallelSpeedup(shards, w.pool_threads, p);
    f.model = UncachedModelCalls(w, FilteredRight(w));
    f.sweep = m * filtered / speedup;
    // The top-k re-collection fan-in, priced with the current compute
    // coefficient (small; kept out of the regression).
    f.fixed = scan_access +
              m * static_cast<double>(std::max<size_t>(shards, 1)) * p.compute;
  } else if (op_name == "index") {
    const double speedup =
        ParallelSpeedup(ProbeShardCount(w), w.pool_threads, p);
    f.model = w.left_embed_cached ? 0.0 : m;
    f.probe = m * ProbeCandidateMultiplier(w, p) / speedup;
    f.fixed = m * p.probe_base / speedup;
  } else if (op_name == "pipelined_tensor") {
    // max(embed, sweep) is not linear in the coefficients: the features
    // describe the workload for the history ring only.
    f.model = w.left_embed_cached ? 0.0 : m;
    f.sweep = m * filtered;
    f.fixed = scan_access;
    f.calibratable = false;
  } else {
    f.calibratable = false;
    return f;
  }

  // Intermediate (chained-join) inputs pay one extra per-row access for
  // the materialization gather that produced them — linear terms, but
  // order-sensitive: the join-order DP sees that stacking joins onto a
  // wide intermediate is not free.
  if (w.left_intermediate) f.fixed += m * p.access;
  if (w.right_intermediate) f.fixed += filtered * p.access;

  // Fused serving batches demultiplex every emitted pair back to its
  // member query by a log2(Q) slice search (plan::ExecuteToDemuxSinks).
  // Only top-k has a plan-time pair count; threshold match counts are
  // unknown and the routing term is noise next to the sweep there.
  if (w.fused_queries > 1 &&
      w.condition.kind == JoinCondition::Kind::kTopK) {
    const double q = static_cast<double>(w.fused_queries);
    f.fixed += m * static_cast<double>(std::max<size_t>(w.condition.k, 1)) *
               std::log2(q) * p.access;
  }
  return f;
}

}  // namespace cej::join
