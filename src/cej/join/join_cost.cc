#include "cej/join/join_cost.h"

#include <algorithm>
#include <cmath>

namespace cej::join {

double ESelectionCost(size_t n, const CostParams& p) {
  return static_cast<double>(n) * (p.access + p.model + p.compute);
}

double NaiveENljCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * static_cast<double>(n) *
         (p.access + p.model + p.compute);
}

double PrefetchENljCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * static_cast<double>(n) *
             (p.access + p.compute) +
         static_cast<double>(m + n) * p.model;
}

double TensorJoinCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * static_cast<double>(n) *
             (p.access + p.compute) * p.tensor_efficiency +
         static_cast<double>(m + n) * p.model;
}

double PipelinedTensorJoinCost(size_t m, size_t n, const CostParams& p) {
  const double embed_right = static_cast<double>(n) * p.model;
  const double sweep = static_cast<double>(m) * static_cast<double>(n) *
                       (p.access + p.compute) * p.tensor_efficiency;
  return static_cast<double>(m) * p.model +
         (embed_right > sweep ? embed_right : sweep);
}

double ShardedJoinCost(size_t m, size_t n, size_t shards, size_t workers,
                       const CostParams& p) {
  const double s = static_cast<double>(std::max<size_t>(shards, 1));
  const double speedup = static_cast<double>(
      std::max<size_t>(std::min(shards, workers), 1));
  const double embed = static_cast<double>(m + n) * p.model;
  const double sweep = static_cast<double>(m) * static_cast<double>(n) *
                       (p.access + p.compute) * p.tensor_efficiency;
  const double merge = static_cast<double>(m) * s * p.compute;
  return embed + sweep / speedup + merge;
}

double IndexProbeCost(size_t n, const CostParams& p) {
  const double depth = n > 1 ? std::log(static_cast<double>(n)) : 1.0;
  return p.probe_base + p.probe_per_candidate *
                            static_cast<double>(p.probe_ef) * depth *
                            (p.access + p.compute);
}

double IndexJoinCost(size_t m, size_t n, const CostParams& p) {
  return static_cast<double>(m) * IndexProbeCost(n, p) +
         static_cast<double>(m) * p.model;
}

double ShardedIndexJoinCost(size_t m, size_t n, size_t shards,
                            size_t workers, const CostParams& p) {
  const double speedup = static_cast<double>(
      std::max<size_t>(std::min(shards, workers), 1));
  return static_cast<double>(m) * IndexProbeCost(n, p) / speedup +
         static_cast<double>(m) * p.model;
}

}  // namespace cej::join
