// The shared blocked similarity sweep (paper Figure 6 step 2): produce a
// bounded dense tile of the similarity matrix, scan it for qualifying
// pairs, stream them out, reuse the buffer.
//
// Exactly ONE copy of this loop exists; `tensor`, `pipelined_tensor`, and
// `sharded_tensor` all execute it, so byte-identity of their results holds
// by construction rather than only by cross-validation tests. The callers
// differ in two ways the spec parameterizes:
//
//   * the right-side coordinate frame — the plain tensor join sweeps the
//     whole right matrix ([0, n), ids as-is), a pipelined tile sweeps a
//     small local matrix whose row 0 is global row `tile.begin`
//     (right_id_offset), a shard sweeps a sub-range [s0, s1) of the global
//     matrix — and
//   * collector ownership for top-k — self-contained sweeps finalize
//     per-left-tile collectors themselves once the tile has seen the whole
//     right range, while sweeps covering only a SLICE of the right
//     relation (pipelined tiles, shards) push into externally-owned
//     collectors that survive across sweeps, because a per-slice top-k
//     alone would be wrong.
//
// Threshold conditions stream row by row (early termination bites inside a
// tile); the cooperative stop flag is polled at tile and row granularity.

#ifndef CEJ_JOIN_SWEEP_KERNEL_H_
#define CEJ_JOIN_SWEEP_KERNEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "cej/common/thread_pool.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"
#include "cej/join/tensor_join.h"
#include "cej/la/topk.h"

namespace cej::join {

/// One intermediate-tile kernel: fills buffer[(i-i0)*(j1-j0) + (j-j0)]
/// with sim(left i, right j). FP32 uses the blocked GEMM; FP16 widens in
/// registers row by row. Coordinates are in the kernel's own frame
/// (whatever matrices the caller closed over).
using TileKernel = std::function<void(size_t i0, size_t i1, size_t j0,
                                      size_t j1, float* buffer)>;

/// Everything one sweep needs. All pointers are borrowed and must outlive
/// the call.
struct SweepSpec {
  /// Left rows covered by the whole sweep (kernel frame).
  size_t left_begin = 0;
  size_t left_end = 0;
  /// Right rows covered (kernel frame): the full matrix for the tensor
  /// join, [0, tile_rows) for a pipelined tile, [s0, s1) for a shard.
  size_t right_begin = 0;
  size_t right_end = 0;
  /// Added to kernel-frame right coordinates when emitting pair ids /
  /// pushing into collectors (pipelined tiles: the tile's global begin).
  size_t right_id_offset = 0;
  /// Inner (L1-resident) blocking of the dense tile buffer.
  TileShape tile;
  JoinCondition condition;
  const TileKernel* kernel = nullptr;
  SinkFeed* feed = nullptr;
  std::atomic<uint64_t>* sims = nullptr;
  /// Top-k only. Non-null: externally-owned collectors indexed by LEFT row
  /// id, shared across sweeps over right-relation slices — the sweep only
  /// pushes; finalizing them is the caller's job once every slice is done.
  /// Null: the sweep covers the whole right range, owns per-left-tile
  /// collectors, and emits each left tile's top-k itself.
  std::vector<la::TopKCollector>* collectors = nullptr;
};

/// Sweeps left rows [i_begin, i_end) against the spec's right range on the
/// calling thread, delivering through spec.feed. Concurrent calls over
/// disjoint left ranges are race-free: workers own their rows' collectors
/// and worker-local pair buffers fan in through the (locked) feed.
void SweepLeftRows(const SweepSpec& spec, size_t i_begin, size_t i_end);

/// Runs the whole sweep, partitioned over left tiles across `pool` when
/// one is supplied and there is more than one tile. Returns the worker
/// concurrency actually used (= concurrently live tile buffers, for
/// peak-memory accounting); the caller-runs pool wait means up to
/// num_threads() + 1 buffers can be live.
size_t RunSweep(const SweepSpec& spec, ThreadPool* pool);

}  // namespace cej::join

#endif  // CEJ_JOIN_SWEEP_KERNEL_H_
