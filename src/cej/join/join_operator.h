// The polymorphic physical-operator interface for the context-enhanced
// join (paper Section III): *one logical operator* — R ⋈_{E,mu,theta} S —
// with interchangeable physical implementations chosen by the cost model.
//
// Every operator consumes a uniform JoinInputs bundle (whichever
// representations of R and S the caller has: raw strings + a model,
// prefetched embedding matrices, or a prebuilt vector index), streams
// matched pairs into a JoinSink, and prices itself via EstimateCost so the
// planner's access-path selection is a registry scan instead of a
// hard-wired if/else. New operators (sharded, async, remote) plug in by
// registering — the planner and the cej::Engine facade pick them up
// without modification.
//
// The six built-ins (registered by default in the global registry):
//
//   naive_nlj        embeds inside the pair loop  — |R|·|S| model calls
//   prefetch_nlj     embeds once, then NLJ        — |R|+|S| model calls
//   tensor           blocked GEMM formulation     — Figure 6/7
//   index            per-tuple index probes       — Section IV.B
//   pipelined_tensor tiled right-side embedding overlapped with the
//                    GEMM sweep — max(embed, sweep) per tile instead of
//                    their sum (the Section V model-cost bottleneck)
//   sharded_tensor   the blocked sweep partitioned over right-relation
//                    row shards, one shard per pool worker, merged
//                    through one sink — whole-right-relation parallelism
//                    (the `tensor` operator only splits the left side)

#ifndef CEJ_JOIN_JOIN_OPERATOR_H_
#define CEJ_JOIN_JOIN_OPERATOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cej/common/status.h"
#include "cej/index/vector_index.h"
#include "cej/join/join_common.h"
#include "cej/join/join_cost.h"
#include "cej/join/join_sink.h"
#include "cej/la/matrix.h"
#include "cej/model/embedding_model.h"

namespace cej::join {

/// The representations of the two join sides available to an operator.
/// All pointers are borrowed and must outlive the Run() call; unavailable
/// representations stay null. Pair ids emitted by an operator address rows
/// of whichever right-side representation it consumed (matrix rows or
/// index entries — the caller keeps them aligned).
struct JoinInputs {
  // Context domain: raw join keys plus the embedding model mu.
  const std::vector<std::string>* left_strings = nullptr;
  const std::vector<std::string>* right_strings = nullptr;
  const model::EmbeddingModel* model = nullptr;

  // Vector domain: prefetched, L2-normalized embedding batches.
  const la::Matrix* left_vectors = nullptr;
  const la::Matrix* right_vectors = nullptr;

  // Index domain: a prebuilt index over the right relation, with an
  // optional relational pre-filter bitmap (Milvus semantics).
  const index::VectorIndex* right_index = nullptr;
  const index::FilterBitmap* right_filter = nullptr;
};

/// Static capabilities an operator declares; the planner uses these to
/// decide eligibility before pricing.
struct JoinOperatorTraits {
  bool needs_strings = false;  ///< Requires left/right_strings + model.
  bool needs_vectors = false;  ///< Requires left/right_vectors.
  bool needs_index = false;    ///< Requires left_vectors + right_index.
  bool exact = true;           ///< False: may miss pairs (recall < 1).
  bool supports_threshold = true;
  bool supports_topk = true;
  /// The operator can consume the right side as raw strings plus a model,
  /// embedding lazily (tile by tile) instead of requiring a prefetched
  /// matrix. The planner uses this to leave an Embed pipeline
  /// un-materialized and hand the operator strings for overlap.
  bool streams_right_strings = false;
};

/// A physical implementation of the E-join.
class JoinOperator {
 public:
  virtual ~JoinOperator() = default;

  /// Stable registry key ("tensor", "index", ...).
  virtual std::string_view Name() const = 0;

  virtual JoinOperatorTraits Traits() const = 0;

  /// Estimated execution cost for `workload` under the calibrated
  /// parameters, in the cost model's units. Operators that cannot serve
  /// the workload (e.g. no index available) return +infinity.
  virtual double EstimateCost(const JoinWorkload& workload,
                              const CostParams& params) const = 0;

  /// Executes the join, streaming matched pairs into `sink` (chunked, in
  /// no particular order) and honouring the sink's early-termination
  /// request at chunk granularity. Returns the counters for the work
  /// actually performed. `sink->Finish()` fires on every OK return.
  virtual Result<JoinStats> Run(const JoinInputs& inputs,
                                const JoinCondition& condition,
                                const JoinOptions& options,
                                JoinSink* sink) const = 0;

  /// Validates `inputs` against Traits() and the shared dimensionality /
  /// condition rules; implementations call this first in Run().
  Status ValidateInputs(const JoinInputs& inputs,
                        const JoinCondition& condition) const;
};

/// Name-keyed catalog of physical join operators. The global instance is
/// pre-seeded with the six built-ins; extensions register at startup.
class JoinOperatorRegistry {
 public:
  /// The process-wide registry (thread-safe).
  static JoinOperatorRegistry& Global();

  JoinOperatorRegistry() = default;

  /// Takes ownership; fails with kAlreadyExists on a duplicate name.
  Status Register(std::unique_ptr<const JoinOperator> op);

  /// Lookup by name, or NotFound listing the registered operators.
  Result<const JoinOperator*> Find(std::string_view name) const;

  /// All registered operators, registration-ordered.
  std::vector<const JoinOperator*> operators() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<const JoinOperator>> ops_;
};

/// Factories for the built-in operators (exposed for tests and custom
/// registries; the global registry already holds one of each).
std::unique_ptr<const JoinOperator> MakeNaiveNljOperator();
std::unique_ptr<const JoinOperator> MakePrefetchNljOperator();
std::unique_ptr<const JoinOperator> MakeTensorJoinOperator();
std::unique_ptr<const JoinOperator> MakeIndexJoinOperator();
std::unique_ptr<const JoinOperator> MakePipelinedTensorOperator();
std::unique_ptr<const JoinOperator> MakeShardedTensorOperator();

}  // namespace cej::join

#endif  // CEJ_JOIN_JOIN_OPERATOR_H_
