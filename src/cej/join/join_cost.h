// The paper's abstract cost model (Section IV.A), owned by the join layer
// so every physical operator can price itself (JoinOperator::EstimateCost)
// against the same calibrated parameters:
//
//   A = per-tuple data access cost      M = model (embedding) cost
//   C = per-pair computation cost       I_probe = per-probe traversal cost
//
//   Cost(sigma_E(R))     = |R| * (A + M + C)
//   Cost(naive E-NLJ)    = |R| * |S| * (A + M + C)
//   Cost(prefetch E-NLJ) = |R| * |S| * (A + C) + (|R| + |S|) * M
//   Cost(E-index join)   = |R| * I_probe(|S|) * (A + C)
//
// The tensor formulation performs the same |R|*|S| similarity work with a
// cache-efficiency factor < 1 relative to the NLJ (calibrated, not assumed).
// plan/cost_model.h re-exports these names for planner-side callers and
// adds host calibration.

#ifndef CEJ_JOIN_JOIN_COST_H_
#define CEJ_JOIN_JOIN_COST_H_

#include <cstddef>

#include "cej/join/join_common.h"

namespace cej::join {

/// Calibrated per-unit costs. Units are arbitrary but mutually normalized
/// (nanoseconds when produced by plan::Calibrate()).
struct CostParams {
  double access = 1.0;        ///< A: per-tuple access.
  double model = 50.0;        ///< M: per-tuple embedding.
  double compute = 5.0;       ///< C: per-pair similarity computation.
  /// Tensor-formulation efficiency vs the per-pair NLJ baseline (< 1 means
  /// the blocked kernel is faster per pair; Figure 14 measures ~0.1).
  double tensor_efficiency = 0.15;
  /// I_probe(n) = probe_base + probe_per_candidate * ef * ln(n) * (A + C):
  /// graph-traversal candidates scale with beam width and graph depth.
  /// The default per-candidate factor is calibrated so the top-1
  /// scan-vs-probe crossover lands at the paper's ~20-30% selectivity for
  /// a 10k x 1M join (Figure 15); pre-filtered probes traverse far more
  /// than ef*ln(n) nodes in practice.
  double probe_base = 10.0;
  double probe_per_candidate = 40.0;
  size_t probe_ef = 64;
};

/// Cost of an E-selection over n tuples (embed + predicate per tuple).
double ESelectionCost(size_t n, const CostParams& p);

/// Cost of the naive E-NLJ (model access inside the pair loop).
double NaiveENljCost(size_t m, size_t n, const CostParams& p);

/// Cost of the prefetch-optimized E-NLJ.
double PrefetchENljCost(size_t m, size_t n, const CostParams& p);

/// Cost of the tensor-join formulation (prefetch + blocked kernel).
double TensorJoinCost(size_t m, size_t n, const CostParams& p);

/// Cost of the pipelined tensor join: the left side is embedded up front,
/// then the right-side embedding of tile k+1 overlaps the blocked sweep of
/// tile k, so across the tile stream the two phases cost max(embed, sweep)
/// instead of their sum (the Section V model-invocation bottleneck hidden
/// behind compute). Always <= TensorJoinCost for the same shape; the gap is
/// min(|S| * M, sweep) — largest when model and sweep cost are balanced.
double PipelinedTensorJoinCost(size_t m, size_t n, const CostParams& p);

/// Cost of the sharded tensor join over `shards` right-relation row
/// shards on `workers` threads: the embedding is unchanged, the blocked
/// sweep divides by the REAL parallelism min(shards, workers) — pinning
/// more shards than workers buys no speedup — and a merge term charges
/// the shared-consumer fan-in per left row per shard (the top-k
/// re-collection pass; the threshold sink fan-in is cheaper but the same
/// order). Undercuts TensorJoinCost once the per-shard sweep saving
/// exceeds the merge — i.e. on large, wide joins with real parallelism.
double ShardedJoinCost(size_t m, size_t n, size_t shards, size_t workers,
                       const CostParams& p);

/// Per-probe cost model I_probe over an index of n entries.
double IndexProbeCost(size_t n, const CostParams& p);

/// Cost of the index join: m probes into an n-entry index.
double IndexJoinCost(size_t m, size_t n, const CostParams& p);

/// Cost of the index join executed over `shards` left-row probe shards on
/// `workers` threads: the left embedding is unchanged, the probe batch
/// divides by the REAL parallelism min(shards, workers). Probes are
/// independent per left row (no cross-shard merge term), so this is
/// exactly IndexJoinCost at shards == 1 or workers == 1.
double ShardedIndexJoinCost(size_t m, size_t n, size_t shards,
                            size_t workers, const CostParams& p);

/// A workload descriptor an operator prices itself against: the shape the
/// planner knows *before* running anything. `right_rows` is the base
/// (pre-filter) size of S — also the size of any index over it;
/// `right_selectivity` is the fraction of S surviving pushed-down
/// relational predicates (scan paths shrink with it, probe paths do not —
/// pre-filter semantics, Section IV.B).
struct JoinWorkload {
  size_t left_rows = 0;
  size_t right_rows = 0;
  size_t dim = 0;  ///< Embedding dimensionality (0 = unknown).
  double right_selectivity = 1.0;
  JoinCondition condition;
  bool index_available = false;
  /// True when the planner can hand the right relation to the operator as
  /// raw strings plus a model (an un-materialized Embed pipeline), letting
  /// pipelined operators overlap embedding with the sweep. Operators that
  /// need that fusion price themselves infinite when it is unavailable.
  bool right_strings_streamable = false;
  /// Worker threads the executor will hand the operator, counting the
  /// calling thread (a caller-runs pool of T workers supplies T + 1;
  /// 1 = no pool). Partition-parallel operators price their speedup with
  /// it and bow out when there is nothing to fan out across.
  size_t pool_threads = 1;
  /// Pinned right-relation shard count the operator will actually run
  /// with (JoinOptions::shard_count; 0 = auto). Priced as-is so the
  /// planner's quote matches the executed configuration.
  size_t shard_count = 0;
};

}  // namespace cej::join

#endif  // CEJ_JOIN_JOIN_COST_H_
