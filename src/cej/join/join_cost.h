// The paper's abstract cost model (Section IV.A), owned by the join layer
// so every physical operator can price itself (JoinOperator::EstimateCost)
// against the same calibrated parameters:
//
//   A = per-tuple data access cost      M = model (embedding) cost
//   C = per-pair computation cost       I_probe = per-probe traversal cost
//
//   Cost(sigma_E(R))     = |R| * (A + M + C)
//   Cost(naive E-NLJ)    = |R| * |S| * (A + M + C)
//   Cost(prefetch E-NLJ) = |R| * |S| * (A + C) + (|R| + |S|) * M
//   Cost(E-index join)   = |R| * I_probe(|S|) * (A + C)
//
// The tensor formulation performs the same |R|*|S| similarity work with a
// cache-efficiency factor < 1 relative to the NLJ (calibrated, not assumed).
// plan/cost_model.h re-exports these names for planner-side callers and
// adds host calibration.

#ifndef CEJ_JOIN_JOIN_COST_H_
#define CEJ_JOIN_JOIN_COST_H_

#include <cstddef>
#include <string_view>

#include "cej/join/join_common.h"

namespace cej::join {

/// Calibrated per-unit costs. Units are arbitrary but mutually normalized
/// (nanoseconds when produced by plan::Calibrate()).
struct CostParams {
  double access = 1.0;        ///< A: per-tuple access.
  double model = 50.0;        ///< M: per-tuple embedding.
  double compute = 5.0;       ///< C: per-pair similarity computation.
  /// Tensor-formulation efficiency vs the per-pair NLJ baseline (< 1 means
  /// the blocked kernel is faster per pair; Figure 14 measures ~0.1).
  double tensor_efficiency = 0.15;
  /// I_probe(n) = probe_base + probe_per_candidate * ef * ln(n) * (A + C):
  /// graph-traversal candidates scale with beam width and graph depth.
  /// The default per-candidate factor is calibrated so the top-1
  /// scan-vs-probe crossover lands at the paper's ~20-30% selectivity for
  /// a 10k x 1M join (Figure 15); pre-filtered probes traverse far more
  /// than ef*ln(n) nodes in practice.
  double probe_base = 10.0;
  double probe_per_candidate = 40.0;
  size_t probe_ef = 64;
  /// Pool-scaling efficiency of partition-parallel operators in (0, 1]:
  /// the realized speedup of P-way parallel work is 1 + (P - 1) * eta
  /// (1 = perfect scaling, the seed assumption; the calibrator lowers it
  /// when measured sharded runs scale worse than linearly).
  double parallel_efficiency = 1.0;
  /// Realized embed/sweep overlap of the pipelined tensor join in [0, 1]:
  /// 1 = perfect overlap (the two phases cost max(embed, sweep), the seed
  /// assumption), 0 = no overlap (they cost their sum). The adaptive
  /// calibrator fits it from measured JoinStats::embed_overlapped_seconds
  /// so the pipelined quote stops assuming the hidden phase is free.
  double pipeline_overlap = 1.0;
};

/// The realized speedup of `min(shards, workers)`-way parallel work under
/// `p.parallel_efficiency` — the ONE rule every sharded cost uses.
double ParallelSpeedup(size_t shards, size_t workers, const CostParams& p);

/// Cost of an E-selection over n tuples (embed + predicate per tuple).
double ESelectionCost(size_t n, const CostParams& p);

/// Cost of the naive E-NLJ (model access inside the pair loop).
double NaiveENljCost(size_t m, size_t n, const CostParams& p);

/// Cost of the prefetch-optimized E-NLJ.
double PrefetchENljCost(size_t m, size_t n, const CostParams& p);

/// Cost of the tensor-join formulation (prefetch + blocked kernel).
double TensorJoinCost(size_t m, size_t n, const CostParams& p);

/// Cost of the pipelined tensor join: the left side is embedded up front,
/// then the right-side embedding of tile k+1 overlaps the blocked sweep of
/// tile k, so across the tile stream the two phases cost
/// max(embed, sweep) + (1 - rho) * min(embed, sweep), where rho is the
/// calibrated overlap efficiency CostParams::pipeline_overlap (rho = 1
/// recovers the ideal max(embed, sweep) of the Section V model-invocation
/// analysis). Always <= TensorJoinCost for the same shape; the gap is
/// rho * min(|S| * M, sweep) — largest when model and sweep are balanced.
/// The cache flags drop the corresponding side's model term (cache-aware
/// costing); this is the ONE pipelined pricing rule — the operator's
/// EstimateCost calls it, so helper and planner cannot diverge.
double PipelinedTensorJoinCost(size_t m, size_t n, const CostParams& p,
                               bool left_embed_cached = false,
                               bool right_embed_cached = false);

/// Cost of the sharded tensor join over `shards` right-relation row
/// shards on `workers` threads: the embedding is unchanged, the blocked
/// sweep divides by the REAL parallelism min(shards, workers) — pinning
/// more shards than workers buys no speedup — and a merge term charges
/// the shared-consumer fan-in per left row per shard (the top-k
/// re-collection pass; the threshold sink fan-in is cheaper but the same
/// order). Undercuts TensorJoinCost once the per-shard sweep saving
/// exceeds the merge — i.e. on large, wide joins with real parallelism.
double ShardedJoinCost(size_t m, size_t n, size_t shards, size_t workers,
                       const CostParams& p);

/// Per-probe cost model I_probe over an index of n entries.
double IndexProbeCost(size_t n, const CostParams& p);

/// Cost of the index join: m probes into an n-entry index.
double IndexJoinCost(size_t m, size_t n, const CostParams& p);

/// Cost of the index join executed over `shards` left-row probe shards on
/// `workers` threads: the left embedding is unchanged, the probe batch
/// divides by the REAL parallelism min(shards, workers). Probes are
/// independent per left row (no cross-shard merge term), so this is
/// exactly IndexJoinCost at shards == 1 or workers == 1.
double ShardedIndexJoinCost(size_t m, size_t n, size_t shards,
                            size_t workers, const CostParams& p);

/// A workload descriptor an operator prices itself against: the shape the
/// planner knows *before* running anything. `right_rows` is the base
/// (pre-filter) size of S — also the size of any index over it;
/// `right_selectivity` is the fraction of S surviving pushed-down
/// relational predicates (scan paths shrink with it, probe paths do not —
/// pre-filter semantics, Section IV.B).
struct JoinWorkload {
  size_t left_rows = 0;
  size_t right_rows = 0;
  size_t dim = 0;  ///< Embedding dimensionality (0 = unknown).
  double right_selectivity = 1.0;
  JoinCondition condition;
  bool index_available = false;
  /// The served index produces exact results (a flat family entry): the
  /// planner's RequireExact() filter admits the probe path despite the
  /// index operator's conservative `exact = false` trait.
  bool index_exact = false;
  /// Expected embedding-cache state per side: true means the side's model
  /// term will NOT be paid (the engine cache already holds — or, for the
  /// left side, the executor has already materialized — the full-column
  /// embedding). Cost formulas price a partial hit asymmetrically: a warm
  /// left and cold right still pays |S| * M, never (|R| + |S|) * M.
  bool left_embed_cached = false;
  bool right_embed_cached = false;
  /// True when the planner can hand the right relation to the operator as
  /// raw strings plus a model (an un-materialized Embed pipeline), letting
  /// pipelined operators overlap embedding with the sweep. Operators that
  /// need that fusion price themselves infinite when it is unavailable.
  bool right_strings_streamable = false;
  /// The side is a materialized intermediate join result (a chained
  /// multi-join pipeline), not a base relation: its carried columns are
  /// gathered row-by-row when it was built, so the join pays one extra
  /// per-row access on that side. Keeps wide intermediates from pricing
  /// identically to base-table scans in the join-order DP.
  bool left_intermediate = false;
  bool right_intermediate = false;
  /// Worker threads the executor will hand the operator, counting the
  /// calling thread (a caller-runs pool of T workers supplies T + 1;
  /// 1 = no pool). Partition-parallel operators price their speedup with
  /// it and bow out when there is nothing to fan out across.
  size_t pool_threads = 1;
  /// Pinned right-relation shard count the operator will actually run
  /// with (JoinOptions::shard_count; 0 = auto). Priced as-is so the
  /// planner's quote matches the executed configuration.
  size_t shard_count = 0;
  /// Client queries stacked into `left_rows` by the serving layer's
  /// multi-query fusion (1 = an ordinary solo plan). The sweep already
  /// scales with the taller left matrix; > 1 additionally prices the
  /// per-pair result demultiplexing back to the member queries.
  size_t fused_queries = 1;
};

/// A workload's cost decomposed over the CALIBRATED coefficients — the
/// contract between pricing and the adaptive cost calibrator
/// (cej/stats/cost_calibrator.h). The quote every scan/probe operator
/// returns is PriceFeatures(FeaturesForOperator(name, w, p), p), so the
/// features the calibrator regresses over are — by construction, not by
/// convention — the exact multipliers the planner priced with:
///
///   predicted = fixed
///            + model * p.model                                 (theta_M)
///            + pair  * (p.access + p.compute)                  (theta_P)
///            + sweep * (p.access + p.compute) * p.tensor_efficiency
///            + probe * (p.access + p.compute) * p.probe_per_candidate
struct CostFeatures {
  double model = 0.0;  ///< Expected model invocations (cache-discounted).
  double pair = 0.0;   ///< Per-pair NLJ work units (incl. merge fan-in).
  double sweep = 0.0;  ///< Blocked-GEMM pair units, post parallel speedup.
  double probe = 0.0;  ///< Index candidate traversals, post speedup.
  /// Cost priced with NON-calibrated parameters (linear access scans,
  /// probe_base), evaluated at estimate time.
  double fixed = 0.0;
  /// False when the operator's cost is not linear in the coefficients
  /// (the pipelined max(embed, sweep) overlap): the observation is kept
  /// for history but excluded from the least-squares fit.
  bool calibratable = true;
};

/// The linear pricing rule above.
double PriceFeatures(const CostFeatures& f, const CostParams& p);

/// The feature decomposition for the named built-in operator
/// ("naive_nlj", "prefetch_nlj", "tensor", "sharded_tensor", "index",
/// "pipelined_tensor"). Unknown names return an all-zero, non-calibratable
/// vector. Eligibility (infinite quotes) is the operator's concern, not
/// this function's.
CostFeatures FeaturesForOperator(std::string_view op_name,
                                 const JoinWorkload& w, const CostParams& p);

}  // namespace cej::join

#endif  // CEJ_JOIN_JOIN_COST_H_
