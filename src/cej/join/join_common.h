// Shared types for the context-enhanced join operators (paper Section III).
//
// An E-join R ⋈_{E,mu,theta} S matches tuple pairs whose *embedded*
// join-key similarity satisfies a condition theta: either a similarity
// threshold (range join) or per-left-tuple top-k. The physical operators
// implementing it (see join_operator.h for the full registry):
//
//   NaiveNljJoin        embeds inside the pair loop — |R|·|S| model calls
//   PrefetchNljJoin     embeds once, then NLJ       — |R|+|S| model calls
//   TensorJoin          blocked GEMM formulation    — Figure 6/7
//   IndexJoin           per-tuple index probes      — Section IV.B
//   PipelinedTensorJoin right-tile embedding overlapped with the sweep
//   ShardedTensorJoin   the sweep partitioned over right row shards
//
// All return identical pairs on exact paths (the index path is
// approximate); the tensor family shares one sweep kernel, and tests
// cross-validate everything.
//
// The operators are registrable implementations of the polymorphic
// join::JoinOperator interface (join_operator.h) and stream their output
// through join::JoinSink (join_sink.h); the cej::Engine facade
// (cej/api/engine.h) and the plan executor select among them via the
// registry. The free functions above each operator remain as materializing
// conveniences for operator-level work.

#ifndef CEJ_JOIN_JOIN_COMMON_H_
#define CEJ_JOIN_JOIN_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "cej/common/status.h"
#include "cej/common/thread_pool.h"
#include "cej/la/matrix.h"
#include "cej/la/simd.h"

namespace cej::join {

/// One matched tuple pair with its similarity.
struct JoinPair {
  uint32_t left;
  uint32_t right;
  float similarity;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.left == b.left && a.right == b.right &&
           a.similarity == b.similarity;
  }
};

/// The join condition theta over embedded keys.
struct JoinCondition {
  enum class Kind {
    kThreshold,  ///< match iff cosine >= threshold (range join, Fig 17)
    kTopK,       ///< match each left tuple's k most similar (Figs 15/16)
  };

  Kind kind = Kind::kThreshold;
  float threshold = 0.9f;
  size_t k = 1;

  static JoinCondition Threshold(float t) {
    JoinCondition c;
    c.kind = Kind::kThreshold;
    c.threshold = t;
    return c;
  }
  static JoinCondition TopK(size_t k) {
    JoinCondition c;
    c.kind = Kind::kTopK;
    c.k = k;
    c.threshold = -std::numeric_limits<float>::infinity();
    return c;
  }
};

/// Execution counters shared by all operators.
///
/// The time components are NON-OVERLAPPING by contract: embed_seconds +
/// join_seconds is a faithful end-to-end total. Pipelined operators whose
/// model time is hidden inside the sweep report it separately as
/// embed_overlapped_seconds (informational — already contained in
/// join_seconds, never added into a total).
struct JoinStats {
  uint64_t model_calls = 0;          ///< Embedding invocations.
  uint64_t similarity_computations = 0;  ///< Pairwise similarity evals.
  size_t peak_buffer_bytes = 0;      ///< Largest intermediate buffer.
  double embed_seconds = 0.0;        ///< Model time outside the join phase.
  double join_seconds = 0.0;         ///< Wall time of the join phase.
  /// Model time overlapped WITH the join phase (pipelined operators): a
  /// subset of join_seconds, reported so the hidden embedding is visible
  /// without double-counting it in component sums.
  double embed_overlapped_seconds = 0.0;
  /// Relation shards the join ran over (sharded operators partition the
  /// right relation; the index join partitions its LEFT probe batch;
  /// 0 = the operator does not shard). Merged as a maximum, like peak
  /// buffers.
  size_t shards_used = 0;
  /// Left rows actually probed by index operators (0 for scan-family
  /// operators; less than |R| when early termination cut probing short).
  uint64_t index_probe_rows = 0;

  /// Merges counters from a sub-step: counts and times accumulate, the
  /// peak buffer and shard count are maxima across steps. Every operator
  /// and the executor use this instead of field-by-field accumulation.
  JoinStats& operator+=(const JoinStats& other);
};

JoinStats operator+(JoinStats lhs, const JoinStats& rhs);

/// Result pairs plus counters. Pairs are sorted by (left, right).
struct JoinResult {
  std::vector<JoinPair> pairs;
  JoinStats stats;
};

/// Canonical (left, right) ordering used by every operator before
/// returning, making results directly comparable.
void SortPairs(std::vector<JoinPair>* pairs);

/// Common execution knobs.
struct JoinOptions {
  la::SimdMode simd = la::SimdMode::kAuto;
  /// Worker pool; nullptr = single-threaded on the caller.
  ThreadPool* pool = nullptr;
  /// Sharding operators: number of right-relation row shards (0 = auto,
  /// sized from the pool width and the shard-row floor). Ignored by
  /// non-sharded operators; lives on the common options so the knob
  /// survives the polymorphic JoinOperator::Run interface.
  size_t shard_count = 0;
};

/// Validates that two embedded sides are joinable (same non-zero dim).
/// Single source of the error text: every operator — FP32, FP16 and
/// index-backed — reports the identical message for mismatched dims.
Status ValidateJoinDims(size_t left_dim, size_t right_dim);

/// Validates that two embedding batches are joinable (same non-zero dim).
Status ValidateJoinInputs(const la::Matrix& left, const la::Matrix& right);

/// Validates the condition itself (rejects top-k with k == 0), with one
/// shared error text across operators.
Status ValidateJoinCondition(const JoinCondition& condition);

}  // namespace cej::join

#endif  // CEJ_JOIN_JOIN_COMMON_H_
