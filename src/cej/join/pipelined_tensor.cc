#include "cej/join/pipelined_tensor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "cej/common/thread_pool.h"
#include "cej/common/timer.h"
#include "cej/join/sweep_kernel.h"
#include "cej/la/gemm.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Auto tile bounds: small enough that a handful of tiles exist to overlap
// (and that two in-flight tiles stay cheap to hold), large enough that one
// embed batch amortizes pool scheduling.
constexpr size_t kMinPipelineTile = 512;
constexpr size_t kMaxPipelineTile = 8192;

// One embedded pipeline tile covering right rows [begin, begin + rows).
struct EmbeddedTile {
  size_t begin = 0;
  la::Matrix vectors;
};

// Bounded single-producer/single-consumer handoff. Capacity 2 is double
// buffering: one tile being swept while the next is being embedded — more
// depth only grows memory without adding overlap.
class TileQueue {
 public:
  void Push(EmbeddedTile tile) {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock, [this] { return tiles_.size() < 2 || aborted_; });
    if (aborted_) return;
    tiles_.push_back(std::move(tile));
    ready_.notify_one();
  }

  // Blocks for the next tile; false once the producer is done and the
  // queue has drained.
  bool Pop(EmbeddedTile* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return !tiles_.empty() || done_; });
    if (tiles_.empty()) return false;
    *out = std::move(tiles_.front());
    tiles_.pop_front();
    space_.notify_one();
    return true;
  }

  void MarkDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    ready_.notify_all();
  }

  // Early termination: unblocks a Push-waiting producer and stops further
  // tiles from entering. Idempotent.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
    }
    space_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_, space_;
  std::deque<EmbeddedTile> tiles_;
  bool done_ = false;
  bool aborted_ = false;
};

}  // namespace

size_t ResolvePipelineTileRows(size_t right_rows,
                               const PipelinedTensorOptions& options) {
  if (right_rows == 0) return 1;
  if (options.pipeline_tile_rows != 0) {
    return std::min(right_rows, options.pipeline_tile_rows);
  }
  const size_t target = right_rows / 8 + 1;
  return std::min(right_rows,
                  std::clamp(target, kMinPipelineTile, kMaxPipelineTile));
}

Result<JoinStats> PipelinedTensorJoinToSink(
    const la::Matrix& left, const std::vector<std::string>& right,
    const model::EmbeddingModel& model, const JoinCondition& condition,
    const PipelinedTensorOptions& options, JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  if (model.dim() == 0) {
    return Status::InvalidArgument("pipelined tensor join: model has dim 0");
  }
  CEJ_RETURN_IF_ERROR(ValidateJoinDims(left.cols(), model.dim()));

  JoinStats stats;
  const size_t m = left.rows();
  const size_t n = right.size();
  if (m == 0 || n == 0) {
    sink->Finish();
    return stats;
  }

  const size_t tile_rows = ResolvePipelineTileRows(n, options);
  const size_t num_tiles = (n + tile_rows - 1) / tile_rows;
  const TileShape inner =
      ResolveTileShape(m, std::min(n, tile_rows), left.cols(), options);
  const bool topk = condition.kind == JoinCondition::Kind::kTopK;

  WallTimer total_timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};

  // Top-k is a property of the whole right stream: one bounded collector
  // per left row survives across tiles (a per-tile top-k would be wrong).
  std::vector<la::TopKCollector> collectors;
  if (topk) {
    collectors.reserve(m);
    for (size_t i = 0; i < m; ++i) collectors.emplace_back(condition.k);
  }

  // Sweeps one embedded tile against the whole left side via the shared
  // sweep kernel, blocked exactly like the tensor join (L1-resident inner
  // tiles). The tile is a SLICE of the right stream: kernel-frame right
  // row 0 is global row tile.begin, and the cross-tile collectors are
  // externally owned. Workers own contiguous left-row ranges, so collector
  // access is synchronization-free.
  // Concurrently live sweep buffers, as measured by the shared kernel
  // (written by the consumer thread only; the producer never sweeps).
  size_t sweep_buffers = 0;
  auto sweep_tile = [&](const EmbeddedTile& tile) {
    const la::Matrix& rt = tile.vectors;
    TileKernel kernel = [&](size_t i0, size_t i1, size_t j0, size_t j1,
                            float* buffer) {
      la::GemmTile(left, rt, i0, i1, j0, j1, buffer, options.simd);
    };
    SweepSpec spec;
    spec.left_end = m;
    spec.right_end = rt.rows();
    spec.right_id_offset = tile.begin;
    spec.tile = inner;
    spec.condition = condition;
    spec.kernel = &kernel;
    spec.feed = &feed;
    spec.sims = &sims;
    spec.collectors = topk ? &collectors : nullptr;
    sweep_buffers = std::max(sweep_buffers, RunSweep(spec, options.pool));
  };

  // Producer state: written by the embedder, read by the caller only after
  // the join() below (which synchronizes).
  double embed_seconds = 0.0;
  uint64_t embedded_rows = 0;
  auto embed_tile = [&](size_t t) {
    const size_t begin = t * tile_rows;
    const size_t end_row = std::min(n, begin + tile_rows);
    WallTimer timer;
    EmbeddedTile tile{begin, model.EmbedRange(right, begin, end_row,
                                              options.pool)};
    embed_seconds += timer.ElapsedSeconds();
    embedded_rows += end_row - begin;
    return tile;
  };

  const bool overlapped = options.pool != nullptr && num_tiles > 1;
  if (!overlapped) {
    // No pool (or nothing to overlap): phase-alternate on the caller. The
    // memory bound — at most one embedded tile live — still holds.
    for (size_t t = 0; t < num_tiles && !feed.stopped(); ++t) {
      const EmbeddedTile tile = embed_tile(t);
      sweep_tile(tile);
    }
  } else {
    TileQueue queue;
    std::thread producer([&] {
      for (size_t t = 0; t < num_tiles; ++t) {
        if (queue.aborted()) break;
        queue.Push(embed_tile(t));
      }
      queue.MarkDone();
    });
    EmbeddedTile tile;
    while (!feed.stopped() && queue.Pop(&tile)) {
      sweep_tile(tile);
    }
    queue.Abort();
    producer.join();
  }

  if (topk && !feed.stopped()) {
    std::vector<JoinPair> local;
    for (size_t i = 0; i < m; ++i) {
      for (const auto& scored : collectors[i].TakeSorted()) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
      feed.MaybeDeliver(&local);
    }
    feed.Deliver(&local);
  }

  // Embedded tiles live at once in the pipelined path: one held by the
  // consumer during its sweep, up to two parked in the queue, one being
  // embedded by the producer.
  const size_t live_tiles = overlapped ? std::min<size_t>(num_tiles, 4) : 1;
  stats.join_seconds = total_timer.ElapsedSeconds();
  if (overlapped) {
    // The producer's model time runs CONCURRENTLY with the sweep, inside
    // the join_seconds wall span: report it as the overlapped component so
    // embed_seconds + join_seconds stays a faithful end-to-end total
    // (reporting it as embed_seconds double-counted the hidden embedding).
    stats.embed_overlapped_seconds = embed_seconds;
  } else {
    // Phase-alternating on the caller: nothing overlapped. The model time
    // is ordinary embed_seconds, carved OUT of the wall span so the
    // components stay non-overlapping.
    stats.embed_seconds = embed_seconds;
    stats.join_seconds =
        std::max(0.0, stats.join_seconds - embed_seconds);
  }
  stats.model_calls = embedded_rows;
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  stats.peak_buffer_bytes = live_tiles * tile_rows * left.cols() *
                                sizeof(float) +
                            sweep_buffers * inner.buffer_bytes();
  sink->Finish();
  return stats;
}

}  // namespace cej::join
