#include "cej/join/pipelined_tensor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "cej/common/thread_pool.h"
#include "cej/common/timer.h"
#include "cej/la/gemm.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Auto tile bounds: small enough that a handful of tiles exist to overlap
// (and that two in-flight tiles stay cheap to hold), large enough that one
// embed batch amortizes pool scheduling.
constexpr size_t kMinPipelineTile = 512;
constexpr size_t kMaxPipelineTile = 8192;

// One embedded pipeline tile covering right rows [begin, begin + rows).
struct EmbeddedTile {
  size_t begin = 0;
  la::Matrix vectors;
};

// Bounded single-producer/single-consumer handoff. Capacity 2 is double
// buffering: one tile being swept while the next is being embedded — more
// depth only grows memory without adding overlap.
class TileQueue {
 public:
  void Push(EmbeddedTile tile) {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock, [this] { return tiles_.size() < 2 || aborted_; });
    if (aborted_) return;
    tiles_.push_back(std::move(tile));
    ready_.notify_one();
  }

  // Blocks for the next tile; false once the producer is done and the
  // queue has drained.
  bool Pop(EmbeddedTile* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return !tiles_.empty() || done_; });
    if (tiles_.empty()) return false;
    *out = std::move(tiles_.front());
    tiles_.pop_front();
    space_.notify_one();
    return true;
  }

  void MarkDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    ready_.notify_all();
  }

  // Early termination: unblocks a Push-waiting producer and stops further
  // tiles from entering. Idempotent.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
    }
    space_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_, space_;
  std::deque<EmbeddedTile> tiles_;
  bool done_ = false;
  bool aborted_ = false;
};

}  // namespace

size_t ResolvePipelineTileRows(size_t right_rows,
                               const PipelinedTensorOptions& options) {
  if (right_rows == 0) return 1;
  if (options.pipeline_tile_rows != 0) {
    return std::min(right_rows, options.pipeline_tile_rows);
  }
  const size_t target = right_rows / 8 + 1;
  return std::min(right_rows,
                  std::clamp(target, kMinPipelineTile, kMaxPipelineTile));
}

Result<JoinStats> PipelinedTensorJoinToSink(
    const la::Matrix& left, const std::vector<std::string>& right,
    const model::EmbeddingModel& model, const JoinCondition& condition,
    const PipelinedTensorOptions& options, JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  if (model.dim() == 0) {
    return Status::InvalidArgument("pipelined tensor join: model has dim 0");
  }
  CEJ_RETURN_IF_ERROR(ValidateJoinDims(left.cols(), model.dim()));

  JoinStats stats;
  const size_t m = left.rows();
  const size_t n = right.size();
  if (m == 0 || n == 0) {
    sink->Finish();
    return stats;
  }

  const size_t tile_rows = ResolvePipelineTileRows(n, options);
  const size_t num_tiles = (n + tile_rows - 1) / tile_rows;
  const TileShape inner =
      ResolveTileShape(m, std::min(n, tile_rows), left.cols(), options);
  const bool topk = condition.kind == JoinCondition::Kind::kTopK;

  WallTimer total_timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};

  // Top-k is a property of the whole right stream: one bounded collector
  // per left row survives across tiles (a per-tile top-k would be wrong).
  std::vector<la::TopKCollector> collectors;
  if (topk) {
    collectors.reserve(m);
    for (size_t i = 0; i < m; ++i) collectors.emplace_back(condition.k);
  }

  // Sweeps one embedded tile against the whole left side, blocked exactly
  // like the tensor join (L1-resident inner tiles). Workers own contiguous
  // left-row ranges, so collector access is synchronization-free.
  auto sweep_tile = [&](const EmbeddedTile& tile) {
    const la::Matrix& rt = tile.vectors;
    const size_t tile_n = rt.rows();
    auto run_rows = [&](size_t row_begin, size_t row_end) {
      std::vector<float> buffer(inner.rows_left * inner.rows_right);
      std::vector<JoinPair> local;
      for (size_t i0 = row_begin; i0 < row_end; i0 += inner.rows_left) {
        if (feed.stopped()) break;
        const size_t i1 = std::min(row_end, i0 + inner.rows_left);
        for (size_t j0 = 0; j0 < tile_n && !feed.stopped();
             j0 += inner.rows_right) {
          const size_t j1 = std::min(tile_n, j0 + inner.rows_right);
          la::GemmTile(left, rt, i0, i1, j0, j1, buffer.data(), options.simd);
          sims.fetch_add(static_cast<uint64_t>(i1 - i0) * (j1 - j0),
                         std::memory_order_relaxed);
          const size_t cols = j1 - j0;
          if (!topk) {
            for (size_t i = i0; i < i1 && !feed.stopped(); ++i) {
              const float* row = buffer.data() + (i - i0) * cols;
              for (size_t j = 0; j < cols; ++j) {
                if (row[j] >= condition.threshold) {
                  local.push_back(
                      {static_cast<uint32_t>(i),
                       static_cast<uint32_t>(tile.begin + j0 + j), row[j]});
                }
              }
              feed.MaybeDeliver(&local);
            }
          } else {
            for (size_t i = i0; i < i1; ++i) {
              const float* row = buffer.data() + (i - i0) * cols;
              auto& collector = collectors[i];
              for (size_t j = 0; j < cols; ++j) {
                collector.Push(row[j],
                               static_cast<uint64_t>(tile.begin + j0 + j));
              }
            }
          }
        }
      }
      feed.Deliver(&local);
    };
    if (options.pool != nullptr && m > inner.rows_left) {
      options.pool->ParallelForRange(0, m, run_rows, inner.rows_left);
    } else {
      run_rows(0, m);
    }
  };

  // Producer state: written by the embedder, read by the caller only after
  // the join() below (which synchronizes).
  double embed_seconds = 0.0;
  uint64_t embedded_rows = 0;
  auto embed_tile = [&](size_t t) {
    const size_t begin = t * tile_rows;
    const size_t end_row = std::min(n, begin + tile_rows);
    WallTimer timer;
    EmbeddedTile tile{begin, model.EmbedRange(right, begin, end_row,
                                              options.pool)};
    embed_seconds += timer.ElapsedSeconds();
    embedded_rows += end_row - begin;
    return tile;
  };

  if (options.pool == nullptr || num_tiles == 1) {
    // No pool (or nothing to overlap): phase-alternate on the caller. The
    // memory bound — at most one embedded tile live — still holds.
    for (size_t t = 0; t < num_tiles && !feed.stopped(); ++t) {
      const EmbeddedTile tile = embed_tile(t);
      sweep_tile(tile);
    }
  } else {
    TileQueue queue;
    std::thread producer([&] {
      for (size_t t = 0; t < num_tiles; ++t) {
        if (queue.aborted()) break;
        queue.Push(embed_tile(t));
      }
      queue.MarkDone();
    });
    EmbeddedTile tile;
    while (!feed.stopped() && queue.Pop(&tile)) {
      sweep_tile(tile);
    }
    queue.Abort();
    producer.join();
  }

  if (topk && !feed.stopped()) {
    std::vector<JoinPair> local;
    for (size_t i = 0; i < m; ++i) {
      for (const auto& scored : collectors[i].TakeSorted()) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
      feed.MaybeDeliver(&local);
    }
    feed.Deliver(&local);
  }

  const size_t row_chunks = (m + inner.rows_left - 1) / inner.rows_left;
  const size_t sweep_buffers =
      options.pool == nullptr
          ? 1
          : std::min<size_t>(
                static_cast<size_t>(options.pool->num_threads()), row_chunks);
  // Embedded tiles live at once in the pipelined path: one held by the
  // consumer during its sweep, up to two parked in the queue, one being
  // embedded by the producer.
  const size_t live_tiles =
      options.pool == nullptr || num_tiles == 1
          ? 1
          : std::min<size_t>(num_tiles, 4);
  stats.join_seconds = total_timer.ElapsedSeconds();
  stats.embed_seconds = embed_seconds;
  stats.model_calls = embedded_rows;
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  stats.peak_buffer_bytes = live_tiles * tile_rows * left.cols() *
                                sizeof(float) +
                            sweep_buffers * inner.buffer_bytes();
  sink->Finish();
  return stats;
}

}  // namespace cej::join
