#include "cej/join/join_common.h"

#include <algorithm>

namespace cej::join {

void SortPairs(std::vector<JoinPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const JoinPair& a, const JoinPair& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
}

Status ValidateJoinInputs(const la::Matrix& left, const la::Matrix& right) {
  if (left.cols() == 0 || right.cols() == 0) {
    return Status::InvalidArgument("E-join: zero-dimensional embeddings");
  }
  if (left.cols() != right.cols()) {
    return Status::InvalidArgument(
        "E-join: embedding dimensionality mismatch (" +
        std::to_string(left.cols()) + " vs " + std::to_string(right.cols()) +
        "); both sides must use the same model mu");
  }
  return Status::OK();
}

}  // namespace cej::join
