#include "cej/join/join_common.h"

#include <algorithm>

namespace cej::join {

JoinStats& JoinStats::operator+=(const JoinStats& other) {
  model_calls += other.model_calls;
  similarity_computations += other.similarity_computations;
  peak_buffer_bytes = std::max(peak_buffer_bytes, other.peak_buffer_bytes);
  embed_seconds += other.embed_seconds;
  join_seconds += other.join_seconds;
  embed_overlapped_seconds += other.embed_overlapped_seconds;
  shards_used = std::max(shards_used, other.shards_used);
  index_probe_rows += other.index_probe_rows;
  return *this;
}

JoinStats operator+(JoinStats lhs, const JoinStats& rhs) {
  lhs += rhs;
  return lhs;
}

void SortPairs(std::vector<JoinPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const JoinPair& a, const JoinPair& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
}

Status ValidateJoinDims(size_t left_dim, size_t right_dim) {
  if (left_dim == 0 || right_dim == 0) {
    return Status::InvalidArgument("E-join: zero-dimensional embeddings");
  }
  if (left_dim != right_dim) {
    return Status::InvalidArgument(
        "E-join: embedding dimensionality mismatch (" +
        std::to_string(left_dim) + " vs " + std::to_string(right_dim) +
        "); both sides must use the same model mu");
  }
  return Status::OK();
}

Status ValidateJoinInputs(const la::Matrix& left, const la::Matrix& right) {
  return ValidateJoinDims(left.cols(), right.cols());
}

Status ValidateJoinCondition(const JoinCondition& condition) {
  if (condition.kind == JoinCondition::Kind::kTopK && condition.k == 0) {
    return Status::InvalidArgument("E-join: top-k condition with k == 0");
  }
  return Status::OK();
}

}  // namespace cej::join
