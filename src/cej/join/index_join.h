// Index-based E-join (paper Section IV.B, Eq. "E-Index Join Cost"):
// each left tuple probes a vector index built over the right relation.
// Probes are batched across the worker pool — "batching many search queries
// [is] equivalent to a join operation for better use of the available
// parallelism" (Section II.A.3). Supports the Milvus-style relational
// pre-filter bitmap the selectivity experiments (Figures 15-17) sweep.

#ifndef CEJ_JOIN_INDEX_JOIN_H_
#define CEJ_JOIN_INDEX_JOIN_H_

#include "cej/common/status.h"
#include "cej/index/vector_index.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"

namespace cej::join {

/// Options for the index join.
struct IndexJoinOptions : JoinOptions {
  /// Admissibility bitmap over the indexed (right) relation, or nullptr.
  /// Entries failing the bitmap never reach the result set, but the
  /// traversal cost is still paid (pre-filtering semantics).
  const index::FilterBitmap* filter = nullptr;
  /// Cap on concurrently batched probes (the paper limits concurrent index
  /// probing to 10k); 0 = no cap beyond pool size.
  size_t max_batched_probes = 10000;
};

/// Probes `right_index` once per left row. Top-k conditions map to index
/// top-k probes; threshold conditions map to range probes (which, on HNSW,
/// use the top-k mechanism with post-filtering — the paper's Figure 17
/// configuration).
Result<JoinResult> IndexJoin(const la::Matrix& left,
                             const index::VectorIndex& right_index,
                             const JoinCondition& condition,
                             const IndexJoinOptions& options = {});

/// Streaming form: emits pair chunks into `sink` (unordered; honours early
/// termination at probe granularity) and returns counters for the work
/// actually performed.
Result<JoinStats> IndexJoinToSink(const la::Matrix& left,
                                  const index::VectorIndex& right_index,
                                  const JoinCondition& condition,
                                  const IndexJoinOptions& options,
                                  JoinSink* sink);

}  // namespace cej::join

#endif  // CEJ_JOIN_INDEX_JOIN_H_
