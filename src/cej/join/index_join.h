// Index-based E-join (paper Section IV.B, Eq. "E-Index Join Cost"):
// each left tuple probes a vector index built over the right relation.
// Probes are batched across the worker pool — "batching many search queries
// [is] equivalent to a join operation for better use of the available
// parallelism" (Section II.A.3). Supports the Milvus-style relational
// pre-filter bitmap the selectivity experiments (Figures 15-17) sweep.
//
// Parallelism uses the sharded-merge discipline of the sharded tensor
// join, applied to the LEFT probe batch: contiguous left-row shards run
// concurrently on the pool and fan into ONE locked sink (SinkFeed), with
// cooperative early termination biting at probe granularity. Every left
// row's matches come from a single probe inside a single shard, so the
// top-k merge degenerates — no cross-shard re-collection pass is needed —
// and results are byte-identical across shard counts by construction.
// Shard resolution shares ResolveShardCount with the sharded tensor join,
// so the planner's probe-parallelism quote (ShardedIndexJoinCost) matches
// the executed configuration.

#ifndef CEJ_JOIN_INDEX_JOIN_H_
#define CEJ_JOIN_INDEX_JOIN_H_

#include "cej/common/status.h"
#include "cej/index/vector_index.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"

namespace cej::join {

/// Options for the index join. The inherited JoinOptions::shard_count
/// pins the left-shard count (0 = auto from the pool width and the
/// shard-row floor).
struct IndexJoinOptions : JoinOptions {
  /// Admissibility bitmap over the indexed (right) relation, or nullptr.
  /// Entries failing the bitmap never reach the result set, but the
  /// traversal cost is still paid (pre-filtering semantics).
  const index::FilterBitmap* filter = nullptr;
  /// Cap on concurrently batched probes (the paper limits concurrent index
  /// probing to 10k). Shards run their probes sequentially, so this caps
  /// the shard count; 0 = no cap beyond pool size.
  size_t max_batched_probes = 10000;
  /// Auto-sharding floor: a probe shard never covers fewer left rows than
  /// this. Probes are orders of magnitude heavier than sweep rows, so the
  /// floor is far below the tensor operators' shard floor.
  size_t min_shard_rows = 8;
};

/// Probes `right_index` once per left row. Top-k conditions map to index
/// top-k probes; threshold conditions map to range probes (which, on HNSW,
/// use the top-k mechanism with post-filtering — the paper's Figure 17
/// configuration).
Result<JoinResult> IndexJoin(const la::Matrix& left,
                             const index::VectorIndex& right_index,
                             const JoinCondition& condition,
                             const IndexJoinOptions& options = {});

/// Streaming form: emits pair chunks into `sink` (unordered; honours early
/// termination at probe granularity) and returns counters for the work
/// actually performed.
Result<JoinStats> IndexJoinToSink(const la::Matrix& left,
                                  const index::VectorIndex& right_index,
                                  const JoinCondition& condition,
                                  const IndexJoinOptions& options,
                                  JoinSink* sink);

}  // namespace cej::join

#endif  // CEJ_JOIN_INDEX_JOIN_H_
