#include "cej/join/e_selection.h"

#include <algorithm>
#include <mutex>

#include "cej/common/timer.h"

namespace cej::join {

Result<SelectionResult> ESelect(const la::Matrix& data, const float* query,
                                const JoinCondition& condition,
                                const JoinOptions& options) {
  if (data.cols() == 0) {
    return Status::InvalidArgument("E-selection: zero-dimensional data");
  }
  if (condition.kind == JoinCondition::Kind::kTopK && condition.k == 0) {
    return Status::InvalidArgument("E-selection: top-k with k == 0");
  }
  SelectionResult result;
  WallTimer timer;
  const size_t dim = data.cols();

  if (condition.kind == JoinCondition::Kind::kThreshold) {
    std::mutex merge_mu;
    auto scan_rows = [&](size_t begin, size_t end) {
      std::vector<la::ScoredId> local;
      for (size_t r = begin; r < end; ++r) {
        const float sim = la::Dot(query, data.Row(r), dim, options.simd);
        if (sim >= condition.threshold) {
          local.push_back({sim, static_cast<uint64_t>(r)});
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      result.matches.insert(result.matches.end(), local.begin(),
                            local.end());
    };
    if (options.pool != nullptr && data.rows() > 1024) {
      options.pool->ParallelForRange(0, data.rows(), scan_rows);
    } else {
      scan_rows(0, data.rows());
    }
    std::sort(result.matches.begin(), result.matches.end());
  } else {
    la::TopKCollector collector(condition.k);
    for (size_t r = 0; r < data.rows(); ++r) {
      collector.Push(la::Dot(query, data.Row(r), dim, options.simd), r);
    }
    result.matches = collector.TakeSorted();
  }

  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.similarity_computations = data.rows();
  return result;
}

Result<SelectionResult> ESelectStrings(const std::vector<std::string>& rows,
                                       const std::string& query,
                                       const model::EmbeddingModel& model,
                                       const JoinCondition& condition,
                                       const JoinOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("E-selection: model has dim 0");
  }
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer embed_timer;
  la::Matrix embedded = model.EmbedBatch(rows, options.pool);
  std::vector<float> query_vec = model.EmbedToVector(query);
  const double embed_seconds = embed_timer.ElapsedSeconds();

  CEJ_ASSIGN_OR_RETURN(
      SelectionResult result,
      ESelect(embedded, query_vec.data(), condition, options));
  result.stats.embed_seconds = embed_seconds;
  result.stats.model_calls = model.embed_calls() - model_calls_before;
  return result;
}

Result<SelectionResult> ESelectIndex(const index::VectorIndex& index,
                                     const float* query,
                                     const JoinCondition& condition,
                                     const index::FilterBitmap* filter) {
  if (condition.kind == JoinCondition::Kind::kTopK && condition.k == 0) {
    return Status::InvalidArgument("E-selection: top-k with k == 0");
  }
  if (filter != nullptr && filter->size() != index.size()) {
    return Status::InvalidArgument(
        "E-selection: filter bitmap size mismatch");
  }
  SelectionResult result;
  WallTimer timer;
  const uint64_t computations_before = index.distance_computations();
  if (condition.kind == JoinCondition::Kind::kTopK) {
    result.matches = index.SearchTopK(query, condition.k, filter);
  } else {
    result.matches = index.SearchRange(query, condition.threshold, filter);
  }
  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.similarity_computations =
      index.distance_computations() - computations_before;
  return result;
}

}  // namespace cej::join
