#include "cej/join/tensor_join.h"

#include <algorithm>
#include <mutex>

#include "cej/common/timer.h"
#include "cej/la/gemm.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Default mini-batch targets: the right (inner) tile is sized so its
// vectors fit in half the L1 data cache — it is swept once per left row
// and must stay resident; the left block amortizes that sweep.
constexpr size_t kDefaultLeftBatch = 256;
constexpr size_t kL1BudgetFloats = 4096;  // 16 KB of B-tile per sweep.

size_t DefaultRightBatch(size_t dim) {
  const size_t rows = kL1BudgetFloats / std::max<size_t>(dim, 1);
  return std::clamp<size_t>(rows, 16, 2048);
}

}  // namespace

TileShape ResolveTileShape(size_t left_rows, size_t right_rows, size_t dim,
                           const TensorJoinOptions& options) {
  TileShape shape;
  shape.rows_left = options.batch_rows_left == 0
                        ? std::min(left_rows, kDefaultLeftBatch)
                        : std::min(left_rows, options.batch_rows_left);
  shape.rows_right =
      options.batch_rows_right == 0
          ? std::min(right_rows, DefaultRightBatch(dim))
          : std::min(right_rows, options.batch_rows_right);
  shape.rows_left = std::max<size_t>(shape.rows_left, 1);
  shape.rows_right = std::max<size_t>(shape.rows_right, 1);
  if (options.memory_budget_bytes > 0) {
    // Shrink the right block first (it is the streamed side), then the
    // left, until the tile fits the budget.
    while (shape.buffer_bytes() > options.memory_budget_bytes &&
           shape.rows_right > 1) {
      shape.rows_right = (shape.rows_right + 1) / 2;
    }
    while (shape.buffer_bytes() > options.memory_budget_bytes &&
           shape.rows_left > 1) {
      shape.rows_left = (shape.rows_left + 1) / 2;
    }
  }
  return shape;
}

Result<JoinResult> TensorJoinMatrices(const la::Matrix& left,
                                      const la::Matrix& right,
                                      const JoinCondition& condition,
                                      const TensorJoinOptions& options) {
  CEJ_RETURN_IF_ERROR(ValidateJoinInputs(left, right));
  if (condition.kind == JoinCondition::Kind::kTopK && condition.k == 0) {
    return Status::InvalidArgument("tensor join: top-k with k == 0");
  }

  const size_t m = left.rows();
  const size_t n = right.rows();
  JoinResult result;
  if (m == 0 || n == 0) return result;

  const TileShape tile = ResolveTileShape(m, n, left.cols(), options);
  WallTimer timer;
  std::mutex merge_mu;

  // One worker processes a contiguous range of left-tile indices; it owns
  // a single reusable tile buffer (and, for top-k, the collectors of every
  // left row in its tiles), so the hot loop is synchronization-free.
  const size_t num_left_tiles = (m + tile.rows_left - 1) / tile.rows_left;
  auto run_tiles = [&](size_t tile_begin, size_t tile_end) {
    std::vector<float> buffer(tile.rows_left * tile.rows_right);
    std::vector<JoinPair> local;
    std::vector<la::TopKCollector> collectors;
    for (size_t t = tile_begin; t < tile_end; ++t) {
      const size_t i0 = t * tile.rows_left;
      const size_t i1 = std::min(m, i0 + tile.rows_left);
      if (condition.kind == JoinCondition::Kind::kTopK) {
        collectors.clear();
        collectors.reserve(i1 - i0);
        for (size_t i = i0; i < i1; ++i) {
          collectors.emplace_back(condition.k);
        }
      }
      for (size_t j0 = 0; j0 < n; j0 += tile.rows_right) {
        const size_t j1 = std::min(n, j0 + tile.rows_right);
        la::GemmTile(left, right, i0, i1, j0, j1, buffer.data(),
                     options.simd);
        const size_t tile_cols = j1 - j0;
        // Scan the dense tile; the sparse qualifying set is emitted as
        // (batch offset) tuple pairs — the late-materialization result
        // format of Figure 6 step 2.
        if (condition.kind == JoinCondition::Kind::kThreshold) {
          for (size_t i = i0; i < i1; ++i) {
            const float* row = buffer.data() + (i - i0) * tile_cols;
            for (size_t j = 0; j < tile_cols; ++j) {
              if (row[j] >= condition.threshold) {
                local.push_back({static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(j0 + j), row[j]});
              }
            }
          }
        } else {
          for (size_t i = i0; i < i1; ++i) {
            const float* row = buffer.data() + (i - i0) * tile_cols;
            auto& collector = collectors[i - i0];
            for (size_t j = 0; j < tile_cols; ++j) {
              collector.Push(row[j], static_cast<uint64_t>(j0 + j));
            }
          }
        }
      }
      if (condition.kind == JoinCondition::Kind::kTopK) {
        for (size_t i = i0; i < i1; ++i) {
          for (const auto& scored : collectors[i - i0].TakeSorted()) {
            local.push_back({static_cast<uint32_t>(i),
                             static_cast<uint32_t>(scored.id),
                             scored.score});
          }
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    result.pairs.insert(result.pairs.end(), local.begin(), local.end());
  };

  size_t concurrency = 1;
  if (options.pool != nullptr && num_left_tiles > 1) {
    concurrency = static_cast<size_t>(options.pool->num_threads());
    options.pool->ParallelForRange(0, num_left_tiles, run_tiles);
  } else {
    run_tiles(0, num_left_tiles);
  }

  SortPairs(&result.pairs);
  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.similarity_computations = static_cast<uint64_t>(m) * n;
  result.stats.peak_buffer_bytes =
      tile.buffer_bytes() * std::min(concurrency, num_left_tiles);
  return result;
}

Result<JoinResult> TensorJoinMatricesHalf(const la::HalfMatrix& left,
                                          const la::HalfMatrix& right,
                                          const JoinCondition& condition,
                                          const TensorJoinOptions& options) {
  if (left.cols() == 0 || left.cols() != right.cols()) {
    return Status::InvalidArgument(
        "tensor join (fp16): embedding dimensionality mismatch");
  }
  if (condition.kind == JoinCondition::Kind::kTopK && condition.k == 0) {
    return Status::InvalidArgument("tensor join (fp16): top-k with k == 0");
  }
  const size_t m = left.rows();
  const size_t n = right.rows();
  const size_t dim = left.cols();
  JoinResult result;
  if (m == 0 || n == 0) return result;

  // FP16 rows are half-width: the same L1 budget fits twice the tile.
  TensorJoinOptions half_options = options;
  if (half_options.batch_rows_right == 0) {
    half_options.batch_rows_right =
        ResolveTileShape(m, n, std::max<size_t>(dim / 2, 1), options)
            .rows_right;
  }
  const TileShape tile = ResolveTileShape(m, n, dim, half_options);
  WallTimer timer;
  std::mutex merge_mu;

  const size_t num_left_tiles = (m + tile.rows_left - 1) / tile.rows_left;
  auto run_tiles = [&](size_t tile_begin, size_t tile_end) {
    std::vector<float> buffer(tile.rows_left * tile.rows_right);
    std::vector<JoinPair> local;
    std::vector<la::TopKCollector> collectors;
    for (size_t t = tile_begin; t < tile_end; ++t) {
      const size_t i0 = t * tile.rows_left;
      const size_t i1 = std::min(m, i0 + tile.rows_left);
      if (condition.kind == JoinCondition::Kind::kTopK) {
        collectors.clear();
        for (size_t i = i0; i < i1; ++i) {
          collectors.emplace_back(condition.k);
        }
      }
      for (size_t j0 = 0; j0 < n; j0 += tile.rows_right) {
        const size_t j1 = std::min(n, j0 + tile.rows_right);
        const size_t tile_cols = j1 - j0;
        for (size_t i = i0; i < i1; ++i) {
          la::DotHalfOneToMany(left.Row(i), right.Row(j0), tile_cols, dim,
                               buffer.data() + (i - i0) * tile_cols,
                               options.simd);
        }
        if (condition.kind == JoinCondition::Kind::kThreshold) {
          for (size_t i = i0; i < i1; ++i) {
            const float* row = buffer.data() + (i - i0) * tile_cols;
            for (size_t j = 0; j < tile_cols; ++j) {
              if (row[j] >= condition.threshold) {
                local.push_back({static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(j0 + j), row[j]});
              }
            }
          }
        } else {
          for (size_t i = i0; i < i1; ++i) {
            const float* row = buffer.data() + (i - i0) * tile_cols;
            auto& collector = collectors[i - i0];
            for (size_t j = 0; j < tile_cols; ++j) {
              collector.Push(row[j], static_cast<uint64_t>(j0 + j));
            }
          }
        }
      }
      if (condition.kind == JoinCondition::Kind::kTopK) {
        for (size_t i = i0; i < i1; ++i) {
          for (const auto& scored : collectors[i - i0].TakeSorted()) {
            local.push_back({static_cast<uint32_t>(i),
                             static_cast<uint32_t>(scored.id),
                             scored.score});
          }
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    result.pairs.insert(result.pairs.end(), local.begin(), local.end());
  };

  size_t concurrency = 1;
  if (options.pool != nullptr && num_left_tiles > 1) {
    concurrency = static_cast<size_t>(options.pool->num_threads());
    options.pool->ParallelForRange(0, num_left_tiles, run_tiles);
  } else {
    run_tiles(0, num_left_tiles);
  }

  SortPairs(&result.pairs);
  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.similarity_computations = static_cast<uint64_t>(m) * n;
  result.stats.peak_buffer_bytes =
      tile.buffer_bytes() * std::min(concurrency, num_left_tiles);
  return result;
}

Result<JoinResult> TensorJoin(const std::vector<std::string>& left,
                              const std::vector<std::string>& right,
                              const model::EmbeddingModel& model,
                              const JoinCondition& condition,
                              const TensorJoinOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("tensor join: model has dim 0");
  }
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer embed_timer;
  la::Matrix left_emb = model.EmbedBatch(left);
  la::Matrix right_emb = model.EmbedBatch(right);
  const double embed_seconds = embed_timer.ElapsedSeconds();

  CEJ_ASSIGN_OR_RETURN(JoinResult result,
                       TensorJoinMatrices(left_emb, right_emb, condition,
                                          options));
  result.stats.embed_seconds = embed_seconds;
  result.stats.model_calls = model.embed_calls() - model_calls_before;
  return result;
}

}  // namespace cej::join
