#include "cej/join/tensor_join.h"

#include <algorithm>
#include <atomic>

#include "cej/common/timer.h"
#include "cej/join/join_sink.h"
#include "cej/join/sweep_kernel.h"
#include "cej/la/gemm.h"

namespace cej::join {
namespace {

// Default mini-batch targets: the right (inner) tile is sized so its
// vectors fit in half the L1 data cache — it is swept once per left row
// and must stay resident; the left block amortizes that sweep.
constexpr size_t kDefaultLeftBatch = 256;
constexpr size_t kL1BudgetFloats = 4096;  // 16 KB of B-tile per sweep.

size_t DefaultRightBatch(size_t dim) {
  const size_t rows = kL1BudgetFloats / std::max<size_t>(dim, 1);
  return std::clamp<size_t>(rows, 16, 2048);
}

// Runs the shared sweep kernel over the full m x n frame (the tensor
// join's self-contained shape: whole right range, sweep-owned top-k
// collectors) and wraps the counters into JoinStats.
Result<JoinStats> RunTiledToSink(size_t m, size_t n,
                                 const TileShape& tile,
                                 const JoinCondition& condition,
                                 const TensorJoinOptions& options,
                                 const TileKernel& kernel, JoinSink* sink) {
  JoinStats stats;
  if (m == 0 || n == 0) {
    sink->Finish();
    return stats;
  }
  WallTimer timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};
  SweepSpec spec;
  spec.left_end = m;
  spec.right_end = n;
  spec.tile = tile;
  spec.condition = condition;
  spec.kernel = &kernel;
  spec.feed = &feed;
  spec.sims = &sims;
  const size_t used_buffers = RunSweep(spec, options.pool);
  stats.join_seconds = timer.ElapsedSeconds();
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  stats.peak_buffer_bytes = tile.buffer_bytes() * used_buffers;
  sink->Finish();
  return stats;
}

}  // namespace

TileShape ResolveTileShape(size_t left_rows, size_t right_rows, size_t dim,
                           const TensorJoinOptions& options) {
  TileShape shape;
  shape.rows_left = options.batch_rows_left == 0
                        ? std::min(left_rows, kDefaultLeftBatch)
                        : std::min(left_rows, options.batch_rows_left);
  shape.rows_right =
      options.batch_rows_right == 0
          ? std::min(right_rows, DefaultRightBatch(dim))
          : std::min(right_rows, options.batch_rows_right);
  shape.rows_left = std::max<size_t>(shape.rows_left, 1);
  shape.rows_right = std::max<size_t>(shape.rows_right, 1);
  if (options.memory_budget_bytes > 0) {
    // Shrink the right block first (it is the streamed side), then the
    // left, until the tile fits the budget.
    while (shape.buffer_bytes() > options.memory_budget_bytes &&
           shape.rows_right > 1) {
      shape.rows_right = (shape.rows_right + 1) / 2;
    }
    while (shape.buffer_bytes() > options.memory_budget_bytes &&
           shape.rows_left > 1) {
      shape.rows_left = (shape.rows_left + 1) / 2;
    }
  }
  return shape;
}

Result<JoinStats> TensorJoinMatricesToSink(const la::Matrix& left,
                                           const la::Matrix& right,
                                           const JoinCondition& condition,
                                           const TensorJoinOptions& options,
                                           JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinInputs(left, right));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  const TileShape tile =
      ResolveTileShape(left.rows(), right.rows(), left.cols(), options);
  TileKernel kernel = [&](size_t i0, size_t i1, size_t j0, size_t j1,
                          float* buffer) {
    la::GemmTile(left, right, i0, i1, j0, j1, buffer, options.simd);
  };
  return RunTiledToSink(left.rows(), right.rows(), tile, condition, options,
                        kernel, sink);
}

Result<JoinResult> TensorJoinMatrices(const la::Matrix& left,
                                      const la::Matrix& right,
                                      const JoinCondition& condition,
                                      const TensorJoinOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      TensorJoinMatricesToSink(left, right, condition, options, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

Result<JoinResult> TensorJoinMatricesHalf(const la::HalfMatrix& left,
                                          const la::HalfMatrix& right,
                                          const JoinCondition& condition,
                                          const TensorJoinOptions& options) {
  CEJ_RETURN_IF_ERROR(ValidateJoinDims(left.cols(), right.cols()));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  const size_t m = left.rows();
  const size_t n = right.rows();
  const size_t dim = left.cols();

  // FP16 rows are half-width: the same L1 budget fits twice the tile.
  TensorJoinOptions half_options = options;
  if (half_options.batch_rows_right == 0) {
    half_options.batch_rows_right =
        ResolveTileShape(m, n, std::max<size_t>(dim / 2, 1), options)
            .rows_right;
  }
  const TileShape tile = ResolveTileShape(m, n, dim, half_options);
  TileKernel kernel = [&](size_t i0, size_t i1, size_t j0, size_t j1,
                          float* buffer) {
    const size_t tile_cols = j1 - j0;
    for (size_t i = i0; i < i1; ++i) {
      la::DotHalfOneToMany(left.Row(i), right.Row(j0), tile_cols, dim,
                           buffer + (i - i0) * tile_cols, options.simd);
    }
  };
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      RunTiledToSink(m, n, tile, condition, options, kernel, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

Result<JoinResult> TensorJoin(const std::vector<std::string>& left,
                              const std::vector<std::string>& right,
                              const model::EmbeddingModel& model,
                              const JoinCondition& condition,
                              const TensorJoinOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("tensor join: model has dim 0");
  }
  JoinStats embed_stats;
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer embed_timer;
  la::Matrix left_emb = model.EmbedBatch(left, options.pool);
  la::Matrix right_emb = model.EmbedBatch(right, options.pool);
  embed_stats.embed_seconds = embed_timer.ElapsedSeconds();
  embed_stats.model_calls = model.embed_calls() - model_calls_before;

  CEJ_ASSIGN_OR_RETURN(JoinResult result,
                       TensorJoinMatrices(left_emb, right_emb, condition,
                                          options));
  result.stats += embed_stats;
  return result;
}

}  // namespace cej::join
