#include "cej/join/tensor_join.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "cej/common/timer.h"
#include "cej/join/join_sink.h"
#include "cej/la/gemm.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Default mini-batch targets: the right (inner) tile is sized so its
// vectors fit in half the L1 data cache — it is swept once per left row
// and must stay resident; the left block amortizes that sweep.
constexpr size_t kDefaultLeftBatch = 256;
constexpr size_t kL1BudgetFloats = 4096;  // 16 KB of B-tile per sweep.

size_t DefaultRightBatch(size_t dim) {
  const size_t rows = kL1BudgetFloats / std::max<size_t>(dim, 1);
  return std::clamp<size_t>(rows, 16, 2048);
}

// One intermediate-tile kernel: fills buffer[(i-i0)*(j1-j0) + (j-j0)] with
// sim(left i, right j). FP32 uses the blocked GEMM; FP16 widens in
// registers row by row.
using TileKernel = std::function<void(size_t i0, size_t i1, size_t j0,
                                      size_t j1, float* buffer)>;

// The shared blocked sweep of Figure 6: produce a bounded tile, scan it
// for qualifying pairs, stream them out, reuse the buffer. Workers own
// contiguous ranges of left tiles (and, for top-k, the collectors of every
// left row in their tiles), so the hot loop is synchronization-free; the
// stop flag is polled once per left tile.
struct TiledSweep {
  size_t m, n;
  TileShape tile;
  JoinCondition condition;
  const JoinOptions* options;
  const TileKernel* kernel;
  SinkFeed* feed;
  std::atomic<uint64_t>* sims;

  // Returns the worker concurrency actually used.
  size_t Run() const {
    const size_t num_left_tiles = (m + tile.rows_left - 1) / tile.rows_left;
    auto run_tiles = [this](size_t tile_begin, size_t tile_end) {
      std::vector<float> buffer(tile.rows_left * tile.rows_right);
      std::vector<JoinPair> local;
      std::vector<la::TopKCollector> collectors;
      for (size_t t = tile_begin; t < tile_end; ++t) {
        if (feed->stopped()) break;
        const size_t i0 = t * tile.rows_left;
        const size_t i1 = std::min(m, i0 + tile.rows_left);
        if (condition.kind == JoinCondition::Kind::kTopK) {
          collectors.clear();
          collectors.reserve(i1 - i0);
          for (size_t i = i0; i < i1; ++i) {
            collectors.emplace_back(condition.k);
          }
        }
        for (size_t j0 = 0; j0 < n && !feed->stopped();
             j0 += tile.rows_right) {
          const size_t j1 = std::min(n, j0 + tile.rows_right);
          (*kernel)(i0, i1, j0, j1, buffer.data());
          sims->fetch_add(static_cast<uint64_t>(i1 - i0) * (j1 - j0),
                          std::memory_order_relaxed);
          const size_t tile_cols = j1 - j0;
          // Scan the dense tile; the sparse qualifying set is emitted as
          // (batch offset) tuple pairs — the late-materialization result
          // format of Figure 6 step 2. Threshold scans stream row by row
          // (early termination bites within a tile); top-k rows finalize
          // only once the whole left tile has been swept.
          if (condition.kind == JoinCondition::Kind::kThreshold) {
            for (size_t i = i0; i < i1 && !feed->stopped(); ++i) {
              const float* row = buffer.data() + (i - i0) * tile_cols;
              for (size_t j = 0; j < tile_cols; ++j) {
                if (row[j] >= condition.threshold) {
                  local.push_back({static_cast<uint32_t>(i),
                                   static_cast<uint32_t>(j0 + j), row[j]});
                }
              }
              feed->MaybeDeliver(&local);
            }
          } else {
            for (size_t i = i0; i < i1; ++i) {
              const float* row = buffer.data() + (i - i0) * tile_cols;
              auto& collector = collectors[i - i0];
              for (size_t j = 0; j < tile_cols; ++j) {
                collector.Push(row[j], static_cast<uint64_t>(j0 + j));
              }
            }
          }
        }
        if (condition.kind == JoinCondition::Kind::kTopK &&
            !feed->stopped()) {
          for (size_t i = i0; i < i1; ++i) {
            for (const auto& scored : collectors[i - i0].TakeSorted()) {
              local.push_back({static_cast<uint32_t>(i),
                               static_cast<uint32_t>(scored.id),
                               scored.score});
            }
          }
        }
        feed->MaybeDeliver(&local);
      }
      feed->Deliver(&local);
    };

    size_t concurrency = 1;
    if (options->pool != nullptr && num_left_tiles > 1) {
      concurrency = static_cast<size_t>(options->pool->num_threads());
      options->pool->ParallelForRange(0, num_left_tiles, run_tiles);
    } else {
      run_tiles(0, num_left_tiles);
    }
    return std::min(concurrency, num_left_tiles);
  }
};

Result<JoinStats> RunTiledToSink(size_t m, size_t n,
                                 const TileShape& tile,
                                 const JoinCondition& condition,
                                 const TensorJoinOptions& options,
                                 const TileKernel& kernel, JoinSink* sink) {
  JoinStats stats;
  if (m == 0 || n == 0) {
    sink->Finish();
    return stats;
  }
  WallTimer timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};
  TiledSweep sweep{m, n, tile, condition, &options, &kernel, &feed, &sims};
  const size_t used_buffers = sweep.Run();
  stats.join_seconds = timer.ElapsedSeconds();
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  stats.peak_buffer_bytes = tile.buffer_bytes() * used_buffers;
  sink->Finish();
  return stats;
}

}  // namespace

TileShape ResolveTileShape(size_t left_rows, size_t right_rows, size_t dim,
                           const TensorJoinOptions& options) {
  TileShape shape;
  shape.rows_left = options.batch_rows_left == 0
                        ? std::min(left_rows, kDefaultLeftBatch)
                        : std::min(left_rows, options.batch_rows_left);
  shape.rows_right =
      options.batch_rows_right == 0
          ? std::min(right_rows, DefaultRightBatch(dim))
          : std::min(right_rows, options.batch_rows_right);
  shape.rows_left = std::max<size_t>(shape.rows_left, 1);
  shape.rows_right = std::max<size_t>(shape.rows_right, 1);
  if (options.memory_budget_bytes > 0) {
    // Shrink the right block first (it is the streamed side), then the
    // left, until the tile fits the budget.
    while (shape.buffer_bytes() > options.memory_budget_bytes &&
           shape.rows_right > 1) {
      shape.rows_right = (shape.rows_right + 1) / 2;
    }
    while (shape.buffer_bytes() > options.memory_budget_bytes &&
           shape.rows_left > 1) {
      shape.rows_left = (shape.rows_left + 1) / 2;
    }
  }
  return shape;
}

Result<JoinStats> TensorJoinMatricesToSink(const la::Matrix& left,
                                           const la::Matrix& right,
                                           const JoinCondition& condition,
                                           const TensorJoinOptions& options,
                                           JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinInputs(left, right));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  const TileShape tile =
      ResolveTileShape(left.rows(), right.rows(), left.cols(), options);
  TileKernel kernel = [&](size_t i0, size_t i1, size_t j0, size_t j1,
                          float* buffer) {
    la::GemmTile(left, right, i0, i1, j0, j1, buffer, options.simd);
  };
  return RunTiledToSink(left.rows(), right.rows(), tile, condition, options,
                        kernel, sink);
}

Result<JoinResult> TensorJoinMatrices(const la::Matrix& left,
                                      const la::Matrix& right,
                                      const JoinCondition& condition,
                                      const TensorJoinOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      TensorJoinMatricesToSink(left, right, condition, options, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

Result<JoinResult> TensorJoinMatricesHalf(const la::HalfMatrix& left,
                                          const la::HalfMatrix& right,
                                          const JoinCondition& condition,
                                          const TensorJoinOptions& options) {
  CEJ_RETURN_IF_ERROR(ValidateJoinDims(left.cols(), right.cols()));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  const size_t m = left.rows();
  const size_t n = right.rows();
  const size_t dim = left.cols();

  // FP16 rows are half-width: the same L1 budget fits twice the tile.
  TensorJoinOptions half_options = options;
  if (half_options.batch_rows_right == 0) {
    half_options.batch_rows_right =
        ResolveTileShape(m, n, std::max<size_t>(dim / 2, 1), options)
            .rows_right;
  }
  const TileShape tile = ResolveTileShape(m, n, dim, half_options);
  TileKernel kernel = [&](size_t i0, size_t i1, size_t j0, size_t j1,
                          float* buffer) {
    const size_t tile_cols = j1 - j0;
    for (size_t i = i0; i < i1; ++i) {
      la::DotHalfOneToMany(left.Row(i), right.Row(j0), tile_cols, dim,
                           buffer + (i - i0) * tile_cols, options.simd);
    }
  };
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      RunTiledToSink(m, n, tile, condition, options, kernel, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

Result<JoinResult> TensorJoin(const std::vector<std::string>& left,
                              const std::vector<std::string>& right,
                              const model::EmbeddingModel& model,
                              const JoinCondition& condition,
                              const TensorJoinOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("tensor join: model has dim 0");
  }
  JoinStats embed_stats;
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer embed_timer;
  la::Matrix left_emb = model.EmbedBatch(left, options.pool);
  la::Matrix right_emb = model.EmbedBatch(right, options.pool);
  embed_stats.embed_seconds = embed_timer.ElapsedSeconds();
  embed_stats.model_calls = model.embed_calls() - model_calls_before;

  CEJ_ASSIGN_OR_RETURN(JoinResult result,
                       TensorJoinMatrices(left_emb, right_emb, condition,
                                          options));
  result.stats += embed_stats;
  return result;
}

}  // namespace cej::join
