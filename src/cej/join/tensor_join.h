// Tensor-join formulation (paper Section IV.C, Figures 6 and 7).
//
// The E-join over unit vectors is a dense similarity matrix D = R · Sᵀ
// followed by a condition scan. The block-matrix decomposition partitions
// both relations along *tuple* boundaries into mini-batches: a pair of
// tiles produces a bounded |part(R)| x |part(S)| intermediate buffer that
// is scanned for qualifying pairs and immediately reused — this is how the
// operator trades repeated kernel invocations for a constrained memory
// footprint (Figure 13) instead of materializing the full |R| x |S| matrix.

#ifndef CEJ_JOIN_TENSOR_JOIN_H_
#define CEJ_JOIN_TENSOR_JOIN_H_

#include <string>
#include <vector>

#include "cej/common/status.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"
#include "cej/la/half.h"
#include "cej/model/embedding_model.h"

namespace cej::join {

/// Tensor-join execution knobs.
struct TensorJoinOptions : JoinOptions {
  /// Mini-batch height over the left relation (0 = auto). Setting this to 1
  /// reproduces the "Non-Batched" configuration of Figure 12 (one side
  /// streamed vector-by-vector).
  size_t batch_rows_left = 0;
  /// Mini-batch height over the right relation (0 = auto).
  size_t batch_rows_right = 0;
  /// Upper bound on one intermediate tile buffer, in bytes (0 = none).
  /// When set, batch sizes are shrunk to respect it.
  size_t memory_budget_bytes = 0;
};

/// Joins two embedded batches with the blocked-GEMM formulation.
Result<JoinResult> TensorJoinMatrices(const la::Matrix& left,
                                      const la::Matrix& right,
                                      const JoinCondition& condition,
                                      const TensorJoinOptions& options = {});

/// Streaming form of TensorJoinMatrices: emits pair chunks into `sink`
/// (unordered; honours early termination at tile granularity) instead of
/// materializing, and returns counters for the work actually performed.
Result<JoinStats> TensorJoinMatricesToSink(
    const la::Matrix& left, const la::Matrix& right,
    const JoinCondition& condition, const TensorJoinOptions& options,
    JoinSink* sink);

/// Half-precision variant (paper Section V.A.2): embeddings stored FP16,
/// similarity arithmetic widened to FP32 in registers. Halves the memory
/// traffic of the bandwidth-bound sweep at a bounded (~2^-11 relative)
/// similarity quantization error.
Result<JoinResult> TensorJoinMatricesHalf(const la::HalfMatrix& left,
                                          const la::HalfMatrix& right,
                                          const JoinCondition& condition,
                                          const TensorJoinOptions& options =
                                              {});

/// End-to-end variant: prefetch-embeds the string keys, then joins.
Result<JoinResult> TensorJoin(const std::vector<std::string>& left,
                              const std::vector<std::string>& right,
                              const model::EmbeddingModel& model,
                              const JoinCondition& condition,
                              const TensorJoinOptions& options = {});

/// The concrete tile shape the operator will use for the given inputs and
/// options (exposed for tests and the Figure 13 bench). `dim` informs the
/// auto default: the right tile is sized to keep one B tile L1-resident
/// (the block-size ablation shows ~40% at dim=100 over L2-sized tiles).
struct TileShape {
  size_t rows_left;
  size_t rows_right;
  /// Bytes of one intermediate buffer (rows_left * rows_right * 4).
  size_t buffer_bytes() const {
    return rows_left * rows_right * sizeof(float);
  }
};
TileShape ResolveTileShape(size_t left_rows, size_t right_rows, size_t dim,
                           const TensorJoinOptions& options);

}  // namespace cej::join

#endif  // CEJ_JOIN_TENSOR_JOIN_H_
