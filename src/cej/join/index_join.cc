#include "cej/join/index_join.h"

#include <algorithm>

#include "cej/common/timer.h"
#include "cej/join/join_sink.h"

namespace cej::join {

Result<JoinStats> IndexJoinToSink(const la::Matrix& left,
                                  const index::VectorIndex& right_index,
                                  const JoinCondition& condition,
                                  const IndexJoinOptions& options,
                                  JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinDims(left.cols(), right_index.dim()));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  if (options.filter != nullptr &&
      options.filter->size() != right_index.size()) {
    return Status::InvalidArgument(
        "index join: filter bitmap size mismatch");
  }

  JoinStats stats;
  WallTimer timer;
  const uint64_t probes_before = right_index.distance_computations();
  SinkFeed feed(sink);

  auto probe_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      if (feed.stopped()) break;
      std::vector<la::ScoredId> matches;
      if (condition.kind == JoinCondition::Kind::kTopK) {
        matches = right_index.SearchTopK(left.Row(i), condition.k,
                                         options.filter);
      } else {
        matches = right_index.SearchRange(left.Row(i), condition.threshold,
                                          options.filter);
      }
      for (const auto& scored : matches) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
      feed.MaybeDeliver(&local);
    }
    feed.Deliver(&local);
  };

  if (options.pool != nullptr && left.rows() > 1) {
    // Respect the concurrent-probe cap by processing the outer relation in
    // waves of at most max_batched_probes queries.
    const size_t wave = options.max_batched_probes == 0
                            ? left.rows()
                            : options.max_batched_probes;
    for (size_t begin = 0; begin < left.rows() && !feed.stopped();
         begin += wave) {
      const size_t end = std::min(left.rows(), begin + wave);
      options.pool->ParallelForRange(begin, end, probe_rows);
    }
  } else {
    probe_rows(0, left.rows());
  }

  stats.join_seconds = timer.ElapsedSeconds();
  stats.similarity_computations =
      right_index.distance_computations() - probes_before;
  sink->Finish();
  return stats;
}

Result<JoinResult> IndexJoin(const la::Matrix& left,
                             const index::VectorIndex& right_index,
                             const JoinCondition& condition,
                             const IndexJoinOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(JoinStats stats,
                       IndexJoinToSink(left, right_index, condition, options,
                                       &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

}  // namespace cej::join
