#include "cej/join/index_join.h"

#include <algorithm>
#include <mutex>

#include "cej/common/timer.h"

namespace cej::join {

Result<JoinResult> IndexJoin(const la::Matrix& left,
                             const index::VectorIndex& right_index,
                             const JoinCondition& condition,
                             const IndexJoinOptions& options) {
  if (left.cols() != right_index.dim()) {
    return Status::InvalidArgument(
        "index join: query dim " + std::to_string(left.cols()) +
        " != index dim " + std::to_string(right_index.dim()));
  }
  if (condition.kind == JoinCondition::Kind::kTopK && condition.k == 0) {
    return Status::InvalidArgument("index join: top-k with k == 0");
  }
  if (options.filter != nullptr &&
      options.filter->size() != right_index.size()) {
    return Status::InvalidArgument(
        "index join: filter bitmap size mismatch");
  }

  JoinResult result;
  WallTimer timer;
  const uint64_t probes_before = right_index.distance_computations();
  std::mutex merge_mu;

  auto probe_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      std::vector<la::ScoredId> matches;
      if (condition.kind == JoinCondition::Kind::kTopK) {
        matches = right_index.SearchTopK(left.Row(i), condition.k,
                                         options.filter);
      } else {
        matches = right_index.SearchRange(left.Row(i), condition.threshold,
                                          options.filter);
      }
      for (const auto& scored : matches) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    result.pairs.insert(result.pairs.end(), local.begin(), local.end());
  };

  if (options.pool != nullptr && left.rows() > 1) {
    // Respect the concurrent-probe cap by processing the outer relation in
    // waves of at most max_batched_probes queries.
    const size_t wave = options.max_batched_probes == 0
                            ? left.rows()
                            : options.max_batched_probes;
    for (size_t begin = 0; begin < left.rows(); begin += wave) {
      const size_t end = std::min(left.rows(), begin + wave);
      options.pool->ParallelForRange(begin, end, probe_rows);
    }
  } else {
    probe_rows(0, left.rows());
  }

  SortPairs(&result.pairs);
  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.similarity_computations =
      right_index.distance_computations() - probes_before;
  return result;
}

}  // namespace cej::join
