#include "cej/join/index_join.h"

#include <algorithm>
#include <atomic>

#include "cej/common/timer.h"
#include "cej/join/join_sink.h"
#include "cej/join/sharded_join.h"

namespace cej::join {

Result<JoinStats> IndexJoinToSink(const la::Matrix& left,
                                  const index::VectorIndex& right_index,
                                  const JoinCondition& condition,
                                  const IndexJoinOptions& options,
                                  JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinDims(left.cols(), right_index.dim()));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  if (options.filter != nullptr &&
      options.filter->size() != right_index.size()) {
    return Status::InvalidArgument(
        "index join: filter bitmap size mismatch");
  }

  JoinStats stats;
  const size_t m = left.rows();
  if (m == 0) {
    sink->Finish();
    return stats;
  }

  // Left-shard resolution shares the sharded-merge rule so the planner's
  // quote (ShardedIndexJoinCost prices the same resolver) matches the
  // executed configuration. Each shard probes sequentially, so the
  // concurrent-probe cap bounds the shard count.
  const size_t workers =
      options.pool == nullptr
          ? 1
          : static_cast<size_t>(options.pool->num_threads()) + 1;
  size_t shards = ResolveShardCount(m, workers, options.shard_count,
                                    std::max<size_t>(options.min_shard_rows,
                                                     1));
  if (options.max_batched_probes != 0) {
    shards = std::min(shards, options.max_batched_probes);
  }

  WallTimer timer;
  const uint64_t probes_before = right_index.distance_computations();
  SinkFeed feed(sink);
  std::atomic<uint64_t> probed{0};

  auto probe_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<JoinPair> local;
    uint64_t rows_done = 0;
    for (size_t i = row_begin; i < row_end; ++i) {
      if (feed.stopped()) break;
      std::vector<la::ScoredId> matches;
      if (condition.kind == JoinCondition::Kind::kTopK) {
        matches = right_index.SearchTopK(left.Row(i), condition.k,
                                         options.filter);
      } else {
        matches = right_index.SearchRange(left.Row(i), condition.threshold,
                                          options.filter);
      }
      ++rows_done;
      for (const auto& scored : matches) {
        local.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(scored.id), scored.score});
      }
      feed.MaybeDeliver(&local);
    }
    feed.Deliver(&local);
    probed.fetch_add(rows_done, std::memory_order_relaxed);
  };

  // Every left row is probed wholly inside one shard, so the per-left-row
  // merge degenerates: shards stream straight through the one locked
  // sink and results are byte-identical across shard counts.
  auto run_shard = [&](size_t s) {
    if (feed.stopped()) return;
    probe_rows(m * s / shards, m * (s + 1) / shards);
  };

  if (options.pool != nullptr && shards > 1) {
    options.pool->ParallelForRange(
        0, shards,
        [&run_shard](size_t begin, size_t end) {
          for (size_t s = begin; s < end; ++s) run_shard(s);
        },
        1);
  } else {
    for (size_t s = 0; s < shards; ++s) run_shard(s);
  }

  stats.join_seconds = timer.ElapsedSeconds();
  stats.similarity_computations =
      right_index.distance_computations() - probes_before;
  stats.shards_used = shards;
  stats.index_probe_rows = probed.load(std::memory_order_relaxed);
  sink->Finish();
  return stats;
}

Result<JoinResult> IndexJoin(const la::Matrix& left,
                             const index::VectorIndex& right_index,
                             const JoinCondition& condition,
                             const IndexJoinOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(JoinStats stats,
                       IndexJoinToSink(left, right_index, condition, options,
                                       &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

}  // namespace cej::join
