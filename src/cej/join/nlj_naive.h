// The naive E-join extension of nested-loop join (paper Eq. "E-NL Join
// Cost"): the model is invoked *inside* the pair loop, once per operand per
// comparison, giving |R|·|S| model accesses. This operator exists to
// reproduce the suboptimal baseline of Figure 8 and to validate the cost
// model — production code should always use PrefetchNljJoin or TensorJoin.

#ifndef CEJ_JOIN_NLJ_NAIVE_H_
#define CEJ_JOIN_NLJ_NAIVE_H_

#include <string>
#include <vector>

#include "cej/common/status.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"
#include "cej/model/embedding_model.h"

namespace cej::join {

/// Threshold E-join with per-pair embedding. Supports only the threshold
/// condition (the baseline experiment's shape). Parallel over the outer
/// relation when options.pool is set.
Result<JoinResult> NaiveNljJoin(const std::vector<std::string>& left,
                                const std::vector<std::string>& right,
                                const model::EmbeddingModel& model,
                                float threshold,
                                const JoinOptions& options = {});

/// Streaming form: emits pair chunks into `sink` (unordered; honours early
/// termination) and returns counters for the work actually performed.
Result<JoinStats> NaiveNljJoinToSink(const std::vector<std::string>& left,
                                     const std::vector<std::string>& right,
                                     const model::EmbeddingModel& model,
                                     float threshold,
                                     const JoinOptions& options,
                                     JoinSink* sink);

}  // namespace cej::join

#endif  // CEJ_JOIN_NLJ_NAIVE_H_
