#include "cej/join/sweep_kernel.h"

#include <algorithm>

namespace cej::join {

void SweepLeftRows(const SweepSpec& spec, size_t i_begin, size_t i_end) {
  SinkFeed* feed = spec.feed;
  const bool topk = spec.condition.kind == JoinCondition::Kind::kTopK;
  std::vector<float> buffer(spec.tile.rows_left * spec.tile.rows_right);
  std::vector<JoinPair> local;
  std::vector<la::TopKCollector> own;  // Per-left-tile collectors.
  for (size_t i0 = i_begin; i0 < i_end; i0 += spec.tile.rows_left) {
    if (feed->stopped()) break;
    const size_t i1 = std::min(i_end, i0 + spec.tile.rows_left);
    if (topk && spec.collectors == nullptr) {
      own.clear();
      own.reserve(i1 - i0);
      for (size_t i = i0; i < i1; ++i) own.emplace_back(spec.condition.k);
    }
    for (size_t j0 = spec.right_begin; j0 < spec.right_end && !feed->stopped();
         j0 += spec.tile.rows_right) {
      const size_t j1 = std::min(spec.right_end, j0 + spec.tile.rows_right);
      (*spec.kernel)(i0, i1, j0, j1, buffer.data());
      spec.sims->fetch_add(static_cast<uint64_t>(i1 - i0) * (j1 - j0),
                           std::memory_order_relaxed);
      const size_t tile_cols = j1 - j0;
      // Scan the dense tile; the sparse qualifying set is emitted as
      // (batch offset) tuple pairs — the late-materialization result
      // format of Figure 6 step 2. Threshold scans stream row by row
      // (early termination bites within a tile); top-k rows finalize only
      // once their collector has seen the whole right range.
      if (!topk) {
        for (size_t i = i0; i < i1 && !feed->stopped(); ++i) {
          const float* row = buffer.data() + (i - i0) * tile_cols;
          for (size_t j = 0; j < tile_cols; ++j) {
            if (row[j] >= spec.condition.threshold) {
              local.push_back(
                  {static_cast<uint32_t>(i),
                   static_cast<uint32_t>(spec.right_id_offset + j0 + j),
                   row[j]});
            }
          }
          feed->MaybeDeliver(&local);
        }
      } else {
        for (size_t i = i0; i < i1; ++i) {
          const float* row = buffer.data() + (i - i0) * tile_cols;
          auto& collector = spec.collectors != nullptr
                                ? (*spec.collectors)[i]
                                : own[i - i0];
          for (size_t j = 0; j < tile_cols; ++j) {
            collector.Push(
                row[j],
                static_cast<uint64_t>(spec.right_id_offset + j0 + j));
          }
        }
      }
    }
    if (topk && spec.collectors == nullptr && !feed->stopped()) {
      for (size_t i = i0; i < i1; ++i) {
        for (const auto& scored : own[i - i0].TakeSorted()) {
          local.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(scored.id), scored.score});
        }
      }
    }
    feed->MaybeDeliver(&local);
  }
  feed->Deliver(&local);
}

size_t RunSweep(const SweepSpec& spec, ThreadPool* pool) {
  if (spec.left_begin >= spec.left_end ||
      spec.right_begin >= spec.right_end) {
    return 0;
  }
  const size_t m = spec.left_end - spec.left_begin;
  const size_t num_left_tiles =
      (m + spec.tile.rows_left - 1) / spec.tile.rows_left;
  if (pool == nullptr || num_left_tiles <= 1) {
    SweepLeftRows(spec, spec.left_begin, spec.left_end);
    return 1;
  }
  pool->ParallelForRange(
      spec.left_begin, spec.left_end,
      [&spec](size_t begin, size_t end) { SweepLeftRows(spec, begin, end); },
      spec.tile.rows_left);
  // The caller executes chunks too while it waits (caller-runs pool).
  return std::min(static_cast<size_t>(pool->num_threads()) + 1,
                  num_left_tiles);
}

}  // namespace cej::join
