#include "cej/join/sharded_join.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "cej/common/timer.h"
#include "cej/join/sweep_kernel.h"
#include "cej/la/gemm.h"
#include "cej/la/topk.h"

namespace cej::join {
namespace {

// Merge grain: left rows re-collected per worker chunk in the top-k merge
// pass. Coarse enough to amortize scheduling, fine enough to balance.
constexpr size_t kMergeGrainRows = 64;

}  // namespace

size_t AutoShardCount(size_t right_rows, size_t workers,
                      size_t min_shard_rows) {
  if (right_rows == 0) return 1;
  min_shard_rows = std::max<size_t>(min_shard_rows, 1);
  workers = std::max<size_t>(workers, 1);
  return std::clamp<size_t>(right_rows / min_shard_rows, 1, workers);
}

size_t ResolveShardCount(size_t right_rows, size_t workers,
                         size_t pinned_shard_count, size_t min_shard_rows) {
  if (right_rows == 0) return 1;
  if (pinned_shard_count != 0) {
    return std::min(right_rows, pinned_shard_count);
  }
  return AutoShardCount(right_rows, workers, min_shard_rows);
}

size_t ResolveShardCount(size_t right_rows, const ThreadPool* pool,
                         const ShardedJoinOptions& options) {
  // The caller-runs pool contributes its own thread on top of the workers.
  const size_t workers =
      pool == nullptr ? 1 : static_cast<size_t>(pool->num_threads()) + 1;
  return ResolveShardCount(right_rows, workers, options.shard_count,
                           options.min_shard_rows);
}

Result<JoinStats> ShardedTensorJoinMatricesToSink(
    const la::Matrix& left, const la::Matrix& right,
    const JoinCondition& condition, const ShardedJoinOptions& options,
    JoinSink* sink) {
  CEJ_RETURN_IF_ERROR(ValidateJoinInputs(left, right));
  CEJ_RETURN_IF_ERROR(ValidateJoinCondition(condition));
  JoinStats stats;
  const size_t m = left.rows();
  const size_t n = right.rows();
  if (m == 0 || n == 0) {
    sink->Finish();
    return stats;
  }

  const size_t shards = ResolveShardCount(n, options.pool, options);
  const size_t max_shard_rows = (n + shards - 1) / shards;
  // Inner blocking is sized for ONE shard's sweep: the whole left side
  // against a right slice of at most max_shard_rows rows.
  const TileShape tile =
      ResolveTileShape(m, max_shard_rows, left.cols(), options);
  const bool topk = condition.kind == JoinCondition::Kind::kTopK;

  WallTimer timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};
  TileKernel kernel = [&](size_t i0, size_t i1, size_t j0, size_t j1,
                          float* buffer) {
    la::GemmTile(left, right, i0, i1, j0, j1, buffer, options.simd);
  };

  // Top-k is a property of the whole right relation: shard s keeps one
  // collector per LEFT ROW over its slice, and the merge pass below
  // re-collects the k best per left row across shards — a per-shard top-k
  // alone would drop pairs whenever one left row's true top-k straddles a
  // shard boundary.
  std::vector<std::vector<la::TopKCollector>> shard_collectors(
      topk ? shards : 0);

  auto run_shard = [&](size_t s) {
    if (feed.stopped()) return;
    const size_t s0 = n * s / shards;
    const size_t s1 = n * (s + 1) / shards;
    if (s0 >= s1) return;
    if (topk) {
      auto& collectors = shard_collectors[s];
      collectors.reserve(m);
      for (size_t i = 0; i < m; ++i) collectors.emplace_back(condition.k);
    }
    SweepSpec spec;
    spec.left_end = m;
    spec.right_begin = s0;  // Kernel frame IS the global right matrix:
    spec.right_end = s1;    // emitted ids need no offset.
    spec.tile = tile;
    spec.condition = condition;
    spec.kernel = &kernel;
    spec.feed = &feed;
    spec.sims = &sims;
    spec.collectors = topk ? &shard_collectors[s] : nullptr;
    // One worker owns the shard's whole sweep; the parallelism of this
    // operator is ACROSS shards, not within one.
    SweepLeftRows(spec, 0, m);
  };

  if (options.pool != nullptr && shards > 1) {
    options.pool->ParallelForRange(
        0, shards,
        [&run_shard](size_t begin, size_t end) {
          for (size_t s = begin; s < end; ++s) run_shard(s);
        },
        1);
  } else {
    for (size_t s = 0; s < shards; ++s) run_shard(s);
  }

  if (topk && !feed.stopped()) {
    // Final merge: per left row, re-collect the k best across shards and
    // emit through the shared feed. Workers own disjoint left-row ranges,
    // so collector access stays synchronization-free.
    auto merge_rows = [&](size_t begin, size_t end) {
      std::vector<JoinPair> local;
      for (size_t i = begin; i < end && !feed.stopped(); ++i) {
        la::TopKCollector merged(condition.k);
        for (auto& collectors : shard_collectors) {
          if (collectors.empty()) continue;  // Shard never ran.
          for (const auto& scored : collectors[i].TakeSorted()) {
            merged.Push(scored.score, scored.id);
          }
        }
        for (const auto& scored : merged.TakeSorted()) {
          local.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(scored.id), scored.score});
        }
        feed.MaybeDeliver(&local);
      }
      feed.Deliver(&local);
    };
    if (options.pool != nullptr && m > kMergeGrainRows) {
      options.pool->ParallelForRange(0, m, merge_rows, kMergeGrainRows);
    } else {
      merge_rows(0, m);
    }
  }

  const size_t concurrency =
      options.pool == nullptr
          ? 1
          : std::min<size_t>(
                static_cast<size_t>(options.pool->num_threads()) + 1, shards);
  stats.join_seconds = timer.ElapsedSeconds();
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  stats.shards_used = shards;
  stats.peak_buffer_bytes =
      tile.buffer_bytes() * concurrency +
      (topk ? shards * m * condition.k * sizeof(la::ScoredId) : 0);
  sink->Finish();
  return stats;
}

Result<JoinResult> ShardedTensorJoinMatrices(
    const la::Matrix& left, const la::Matrix& right,
    const JoinCondition& condition, const ShardedJoinOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(JoinStats stats,
                       ShardedTensorJoinMatricesToSink(left, right, condition,
                                                       options, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

}  // namespace cej::join
