// Pipelined tensor join: overlapping model invocation with the similarity
// sweep (the ROADMAP "async/pipelined operator"; paper Section V observes
// that model cost, not the sweep, dominates end-to-end join time).
//
// The right relation is consumed as *raw strings* in tiles: a dedicated
// producer thread embeds tile k+1 (in parallel over the pool) while the
// caller sweeps the already-embedded tile k with the blocked GEMM kernel
// and streams qualifying pairs into the sink. Per tile the pipeline costs
// max(embed, sweep) instead of embed + sweep — the phase-ordered operators'
// cost — and peak memory holds only a bounded number of embedded tiles
// instead of the full |S| x d matrix.
//
// Threshold conditions stream pairs as tiles complete (early termination
// bites mid-tile and aborts the producer); top-k conditions keep one
// bounded collector per left row across tiles and emit once the stream
// ends, since a per-tile top-k would be wrong.

#ifndef CEJ_JOIN_PIPELINED_TENSOR_H_
#define CEJ_JOIN_PIPELINED_TENSOR_H_

#include <string>
#include <vector>

#include "cej/common/status.h"
#include "cej/join/join_sink.h"
#include "cej/join/tensor_join.h"
#include "cej/model/embedding_model.h"

namespace cej::join {

/// Knobs for the pipelined tensor join. The tensor-join fields control the
/// inner (L1-resident) blocking of each sweep exactly as in TensorJoin.
struct PipelinedTensorOptions : TensorJoinOptions {
  /// Rows of the right relation embedded per pipeline tile (0 = auto:
  /// sized so several tiles exist to overlap, clamped to [512, 8192]).
  size_t pipeline_tile_rows = 0;
};

/// The pipeline tile height used for a right relation of `right_rows`.
size_t ResolvePipelineTileRows(size_t right_rows,
                               const PipelinedTensorOptions& options);

/// Joins pre-embedded left vectors against right-side *strings*, embedding
/// right tiles concurrently with the sweep of the previous tile (see file
/// comment). Pair right-ids address positions of `right`. Emitted stats:
/// when the pipeline overlaps (pool + several tiles), join_seconds is the
/// wall time of the whole pipelined phase and the model time hidden
/// inside it is reported as embed_overlapped_seconds (NOT as
/// embed_seconds, which would double-count it in component sums); on the
/// phase-alternating fallback nothing overlaps, so the model time is
/// ordinary embed_seconds, excluded from join_seconds.
Result<JoinStats> PipelinedTensorJoinToSink(
    const la::Matrix& left, const std::vector<std::string>& right,
    const model::EmbeddingModel& model, const JoinCondition& condition,
    const PipelinedTensorOptions& options, JoinSink* sink);

}  // namespace cej::join

#endif  // CEJ_JOIN_PIPELINED_TENSOR_H_
