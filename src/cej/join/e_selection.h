// Context-enhanced selection (paper Section III.C, "E-Selection"):
//   sigma_{E,mu,theta}(R)  <=>  sigma_theta(E_mu(R))
// selects the tuples of one relation whose embedded key satisfies a
// similarity condition against a single query — the building block of
// semantic search, and the one-query special case of the E-join ("a search
// query takes a single query as an input; batching many search queries
// would be equivalent to a join", Section II.A.3).
//
// Cost model: |R| * (A + M + C) when embedding online (Eq. E-Selection
// Cost); the vector-domain variants drop the M term.

#ifndef CEJ_JOIN_E_SELECTION_H_
#define CEJ_JOIN_E_SELECTION_H_

#include <string>
#include <vector>

#include "cej/common/status.h"
#include "cej/index/vector_index.h"
#include "cej/join/join_common.h"
#include "cej/la/topk.h"
#include "cej/model/embedding_model.h"

namespace cej::join {

/// Matching tuples of an E-selection, best-first, plus counters.
struct SelectionResult {
  std::vector<la::ScoredId> matches;
  JoinStats stats;
};

/// Vector-domain E-selection: scans `data` (one unit vector per row) for
/// rows satisfying `condition` against `query` (dim = data.cols()).
Result<SelectionResult> ESelect(const la::Matrix& data, const float* query,
                                const JoinCondition& condition,
                                const JoinOptions& options = {});

/// String-domain E-selection: embeds every input row and the query with
/// `model`, then selects. Pays |R| + 1 model calls.
Result<SelectionResult> ESelectStrings(const std::vector<std::string>& rows,
                                       const std::string& query,
                                       const model::EmbeddingModel& model,
                                       const JoinCondition& condition,
                                       const JoinOptions& options = {});

/// Index-backed E-selection: probes `index` instead of scanning. Subject
/// to the index's approximation and top-k retrieval mechanism.
Result<SelectionResult> ESelectIndex(const index::VectorIndex& index,
                                     const float* query,
                                     const JoinCondition& condition,
                                     const index::FilterBitmap* filter =
                                         nullptr);

}  // namespace cej::join

#endif  // CEJ_JOIN_E_SELECTION_H_
