// Sharded tensor join: the tensor formulation partitioned over the RIGHT
// relation (the ROADMAP "sharded join operator", in the shape of
// ClickHouse's parallel hash/merge pipeline: partition, per-shard kernels
// on the pool, merge through one consumer).
//
// The E-join is embarrassingly partitionable over S: sim(r, s) depends on
// one (r, s) pair, so splitting S into contiguous row shards and sweeping
// each shard independently covers the full |R| x |S| frame. Every shard
// runs the SAME shared sweep kernel as the `tensor` and `pipelined_tensor`
// operators (sweep_kernel.h), just over its right sub-range — per-pair
// similarities, and therefore results, are byte-identical by construction.
//
// Unlike `tensor`, whose pool parallelism splits the LEFT relation into
// row tiles (and therefore starves when |R| is below one tile height),
// the sharded operator's parallelism spans the whole right relation: each
// worker owns one shard's full m x (n/shards) sweep. Merging:
//
//   * threshold shards stream qualifying pairs straight through the one
//     locked sink as they are found, with cooperative early termination
//     biting mid-shard (the stop flag is shared across shards);
//   * top-k shards keep one collector PER LEFT ROW each — a per-shard
//     top-k alone would be wrong — and a final pass re-collects the k
//     best per left row across all shards before emitting.

#ifndef CEJ_JOIN_SHARDED_JOIN_H_
#define CEJ_JOIN_SHARDED_JOIN_H_

#include "cej/common/status.h"
#include "cej/join/join_common.h"
#include "cej/join/join_sink.h"
#include "cej/join/tensor_join.h"

namespace cej::join {

/// Knobs for the sharded tensor join. The inherited tensor-join fields
/// control the inner (L1-resident) blocking of each shard's sweep; the
/// inherited JoinOptions::shard_count fixes the shard count (0 = auto).
struct ShardedJoinOptions : TensorJoinOptions {
  /// Auto-sharding floor: a shard never covers fewer right rows than this
  /// (amortizes per-shard scheduling and merge overhead). Auto shard
  /// count = clamp(right_rows / min_shard_rows, 1, pool width + 1).
  size_t min_shard_rows = 1024;
};

/// The auto-sharding rule shared by execution and pricing:
/// clamp(right_rows / min_shard_rows, 1, workers). `workers` counts the
/// caller too (a caller-runs pool of T threads supplies T + 1).
size_t AutoShardCount(size_t right_rows, size_t workers,
                      size_t min_shard_rows);

/// The ONE shard-resolution rule — a pinned count wins (clamped to the
/// row count), otherwise the auto rule above. Execution and pricing both
/// call this, so the planner's quoted shard count cannot drift from the
/// one Run() executes.
size_t ResolveShardCount(size_t right_rows, size_t workers,
                         size_t pinned_shard_count, size_t min_shard_rows);

/// Execution-side convenience over the rule above. `pool` is the worker
/// pool the shards would run on (nullptr = caller only).
size_t ResolveShardCount(size_t right_rows, const ThreadPool* pool,
                         const ShardedJoinOptions& options);

/// Joins two embedded batches with per-shard blocked-GEMM sweeps over
/// right row shards, merged into `sink` (see file comment). Byte-identical
/// to TensorJoinMatricesToSink for every shard count. Stats report the
/// shard count in JoinStats::shards_used.
Result<JoinStats> ShardedTensorJoinMatricesToSink(
    const la::Matrix& left, const la::Matrix& right,
    const JoinCondition& condition, const ShardedJoinOptions& options,
    JoinSink* sink);

/// Materializing convenience wrapper (the JoinResult contract).
Result<JoinResult> ShardedTensorJoinMatrices(
    const la::Matrix& left, const la::Matrix& right,
    const JoinCondition& condition, const ShardedJoinOptions& options = {});

}  // namespace cej::join

#endif  // CEJ_JOIN_SHARDED_JOIN_H_
