#include "cej/join/join_sink.h"

#include <algorithm>
#include <limits>

namespace cej::join {

size_t MaterializingSink::Capacity() const {
  size_t cap = std::numeric_limits<size_t>::max();
  if (options_.max_pairs > 0) cap = options_.max_pairs;
  if (options_.memory_budget_bytes > 0) {
    cap = std::min(cap, options_.memory_budget_bytes / sizeof(JoinPair));
  }
  return cap;
}

bool MaterializingSink::Consume(const JoinPair* pairs, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t cap = Capacity();
  if (pairs_.size() >= cap) {
    truncated_ = true;
    return false;
  }
  const size_t take = std::min(count, cap - pairs_.size());
  pairs_.insert(pairs_.end(), pairs, pairs + take);
  if (take < count) truncated_ = true;
  return pairs_.size() < cap;
}

void MaterializingSink::Finish() { SortPairs(&pairs_); }

bool CountingSink::Consume(const JoinPair* /*pairs*/, size_t count) {
  const size_t total =
      count_.fetch_add(count, std::memory_order_relaxed) + count;
  return limit_ == 0 || total < limit_;
}

}  // namespace cej::join
