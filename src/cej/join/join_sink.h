// Streaming consumption of E-join output.
//
// Operators produce matched pairs in chunks as they are discovered instead
// of mandatorily materializing a full JoinResult: a JoinSink receives each
// chunk and may request early termination by returning false — the
// operator then stops scheduling work and returns the statistics of the
// work actually performed. This is what lets LIMIT-style queries, paged
// result shipping, and memory-bounded execution avoid paying for the whole
// |R| x |S| result.
//
// Contract:
//  * Consume() may be invoked concurrently from worker threads; sinks must
//    be thread-safe. Chunks arrive in no particular order.
//  * A false return is a *request*: workers poll it at chunk granularity,
//    so a bounded number of further Consume() calls may still arrive.
//  * Finish() is invoked exactly once, after the last Consume(), when the
//    operator completes without error (including after early termination).

#ifndef CEJ_JOIN_JOIN_SINK_H_
#define CEJ_JOIN_JOIN_SINK_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "cej/join/join_common.h"

namespace cej::join {

/// Abstract streaming consumer of join pairs.
class JoinSink {
 public:
  virtual ~JoinSink() = default;

  /// Receives `count` matched pairs. Returns false to request early
  /// termination of the producing operator. Thread-safe.
  virtual bool Consume(const JoinPair* pairs, size_t count) = 0;

  /// Called once when the operator finishes producing (also after early
  /// termination). Not called when the operator returns an error.
  virtual void Finish() {}
};

/// Materializes the stream into a canonical (left, right)-sorted pair
/// vector — the JoinResult contract — with optional bounds. Once either
/// bound is reached the sink requests termination and marks itself
/// truncated; pairs beyond the bound are dropped.
class MaterializingSink : public JoinSink {
 public:
  struct Options {
    /// Keep at most this many pairs (0 = unbounded).
    size_t max_pairs = 0;
    /// Keep at most this many bytes of pairs (0 = unbounded).
    size_t memory_budget_bytes = 0;
  };

  MaterializingSink() = default;
  explicit MaterializingSink(Options options) : options_(options) {}

  bool Consume(const JoinPair* pairs, size_t count) override;
  void Finish() override;

  /// True when a bound cut the stream short.
  bool truncated() const { return truncated_; }
  const std::vector<JoinPair>& pairs() const { return pairs_; }
  std::vector<JoinPair> TakePairs() { return std::move(pairs_); }

 private:
  size_t Capacity() const;

  Options options_;
  std::mutex mu_;
  std::vector<JoinPair> pairs_;
  bool truncated_ = false;
};

/// Counts matches without materializing them; optionally stops the
/// operator once `limit` pairs have been seen. count() is pairs
/// *observed*, not pairs kept: chunks are counted whole, so it can
/// exceed `limit` by up to the in-flight chunk sizes — use
/// MaterializingSink::Options::max_pairs for an exact LIMIT.
class CountingSink : public JoinSink {
 public:
  CountingSink() = default;
  explicit CountingSink(size_t limit) : limit_(limit) {}

  bool Consume(const JoinPair* pairs, size_t count) override;

  size_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  size_t limit_ = 0;
  std::atomic<size_t> count_{0};
};

/// Adapts a callable `bool(const JoinPair*, size_t)` into a sink. The
/// callable must be thread-safe.
class CallbackSink : public JoinSink {
 public:
  using Callback = std::function<bool(const JoinPair*, size_t)>;
  explicit CallbackSink(Callback callback)
      : callback_(std::move(callback)) {}

  bool Consume(const JoinPair* pairs, size_t count) override {
    return callback_(pairs, count);
  }

 private:
  Callback callback_;
};

/// Pairs per worker-local buffer before a flush to the sink. Large enough
/// to amortize the virtual call, small enough that early termination is
/// responsive.
inline constexpr size_t kSinkChunkPairs = 4096;

/// Shared by operator implementations: fan-in point from worker-local pair
/// buffers into one sink, carrying the cooperative stop flag. Workers call
/// Deliver() when their buffer fills (and once at the end of their range)
/// and poll stopped() in their outer loops.
class SinkFeed {
 public:
  explicit SinkFeed(JoinSink* sink) : sink_(sink) {}

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// Flushes and clears `local`. A false Consume() latches the stop flag.
  /// Already-computed pairs are still delivered after a stop request (the
  /// sink decides to drop them) so bounded sinks can tell "stream ended
  /// exactly at my bound" apart from "pairs were cut off".
  void Deliver(std::vector<JoinPair>* local) {
    if (local->empty()) return;
    if (!sink_->Consume(local->data(), local->size())) {
      stop_.store(true, std::memory_order_relaxed);
    }
    local->clear();
  }

  /// Flushes `local` only when it has grown past the chunk size.
  void MaybeDeliver(std::vector<JoinPair>* local) {
    if (local->size() >= kSinkChunkPairs) Deliver(local);
  }

 private:
  JoinSink* sink_;
  std::atomic<bool> stop_{false};
};

}  // namespace cej::join

#endif  // CEJ_JOIN_JOIN_SINK_H_
