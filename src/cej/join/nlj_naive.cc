#include "cej/join/nlj_naive.h"

#include <mutex>

#include "cej/common/timer.h"
#include "cej/la/simd.h"

namespace cej::join {

Result<JoinResult> NaiveNljJoin(const std::vector<std::string>& left,
                                const std::vector<std::string>& right,
                                const model::EmbeddingModel& model,
                                float threshold,
                                const JoinOptions& options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("naive NLJ: model has dim 0");
  }
  JoinResult result;
  const size_t dim = model.dim();
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer timer;

  std::mutex merge_mu;
  auto run_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<float> left_vec(dim);
    std::vector<float> right_vec(dim);
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      for (size_t j = 0; j < right.size(); ++j) {
        // The defining inefficiency: both operands are re-embedded for
        // every pair, as an imperative user integration would do.
        model.Embed(left[i], left_vec.data());
        model.Embed(right[j], right_vec.data());
        const float sim = la::Dot(left_vec.data(), right_vec.data(), dim,
                                  options.simd);
        if (sim >= threshold) {
          local.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j), sim});
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    result.pairs.insert(result.pairs.end(), local.begin(), local.end());
  };

  if (options.pool != nullptr) {
    options.pool->ParallelForRange(0, left.size(), run_rows);
  } else {
    run_rows(0, left.size());
  }

  SortPairs(&result.pairs);
  result.stats.join_seconds = timer.ElapsedSeconds();
  result.stats.model_calls = model.embed_calls() - model_calls_before;
  result.stats.similarity_computations =
      static_cast<uint64_t>(left.size()) * right.size();
  return result;
}

}  // namespace cej::join
