#include "cej/join/nlj_naive.h"

#include <atomic>

#include "cej/common/timer.h"
#include "cej/join/join_sink.h"
#include "cej/la/simd.h"

namespace cej::join {

Result<JoinStats> NaiveNljJoinToSink(const std::vector<std::string>& left,
                                     const std::vector<std::string>& right,
                                     const model::EmbeddingModel& model,
                                     float threshold,
                                     const JoinOptions& options,
                                     JoinSink* sink) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("naive NLJ: model has dim 0");
  }
  JoinStats stats;
  const size_t dim = model.dim();
  const uint64_t model_calls_before = model.embed_calls();
  WallTimer timer;
  SinkFeed feed(sink);
  std::atomic<uint64_t> sims{0};

  auto run_rows = [&](size_t row_begin, size_t row_end) {
    std::vector<float> left_vec(dim);
    std::vector<float> right_vec(dim);
    std::vector<JoinPair> local;
    for (size_t i = row_begin; i < row_end; ++i) {
      if (feed.stopped()) break;
      for (size_t j = 0; j < right.size(); ++j) {
        // The defining inefficiency: both operands are re-embedded for
        // every pair, as an imperative user integration would do.
        model.Embed(left[i], left_vec.data());
        model.Embed(right[j], right_vec.data());
        const float sim = la::Dot(left_vec.data(), right_vec.data(), dim,
                                  options.simd);
        if (sim >= threshold) {
          local.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j), sim});
          // Flush inside the inner loop too: one low-threshold outer row
          // can match all of |S|, and chunked emission must hold then.
          feed.MaybeDeliver(&local);
        }
      }
      sims.fetch_add(right.size(), std::memory_order_relaxed);
      feed.MaybeDeliver(&local);
    }
    feed.Deliver(&local);
  };

  if (options.pool != nullptr) {
    options.pool->ParallelForRange(0, left.size(), run_rows);
  } else {
    run_rows(0, left.size());
  }

  stats.join_seconds = timer.ElapsedSeconds();
  stats.model_calls = model.embed_calls() - model_calls_before;
  stats.similarity_computations = sims.load(std::memory_order_relaxed);
  sink->Finish();
  return stats;
}

Result<JoinResult> NaiveNljJoin(const std::vector<std::string>& left,
                                const std::vector<std::string>& right,
                                const model::EmbeddingModel& model,
                                float threshold,
                                const JoinOptions& options) {
  MaterializingSink sink;
  CEJ_ASSIGN_OR_RETURN(JoinStats stats,
                       NaiveNljJoinToSink(left, right, model, threshold,
                                          options, &sink));
  JoinResult result;
  result.pairs = sink.TakePairs();
  result.stats = stats;
  return result;
}

}  // namespace cej::join
