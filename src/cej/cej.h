// Umbrella header for the CEJ public API.
//
// Most programs only need this: it pulls in the cej::Engine facade (the
// catalog + fluent QueryBuilder surface), the join operator registry and
// streaming sinks, the logical-plan/optimizer layer underneath it, and
// the storage, predicate, model, and index types those interfaces expose.
//
//   #include "cej/cej.h"
//
//   cej::Engine engine;
//   engine.RegisterTable("photos", ...);
//   engine.RegisterModel("fasttext", &model);
//   auto result = engine.Query("photos")
//                     .EJoin("catalog", "word",
//                            cej::join::JoinCondition::TopK(3))
//                     .Execute();
//
// Layer headers (cej/join/..., cej/plan/...) remain includable directly
// for operator-level work.

#ifndef CEJ_CEJ_H_
#define CEJ_CEJ_H_

#include "cej/api/engine.h"
#include "cej/common/status.h"
#include "cej/common/thread_pool.h"
#include "cej/expr/predicate.h"
#include "cej/index/flat_index.h"
#include "cej/index/hnsw_index.h"
#include "cej/index/index_manager.h"
#include "cej/index/ivf_index.h"
#include "cej/join/join_common.h"
#include "cej/join/join_cost.h"
#include "cej/join/join_operator.h"
#include "cej/join/join_sink.h"
#include "cej/join/sharded_join.h"
#include "cej/model/embedding_model.h"
#include "cej/model/subword_hash_model.h"
#include "cej/plan/executor.h"
#include "cej/plan/logical_plan.h"
#include "cej/plan/rewrite.h"
#include "cej/serve/server.h"
#include "cej/stats/cost_calibrator.h"
#include "cej/stats/workload_stats.h"
#include "cej/storage/relation.h"

#endif  // CEJ_CEJ_H_
